// Package cache implements the L1 data caches (GPU CU and CPU core)
// with the DeNovo word-granularity coherence protocol: line-granularity
// tags, per-word Invalid/Shared/Registered state, registration on store
// misses, self-invalidation of Shared words at kernel boundaries, and
// lazy writeback of Registered words on eviction.
//
// The cache is physically indexed and tagged: every access pays a TLB
// lookup and a tag comparison, which is exactly the energy overhead the
// stash avoids (paper Table 1).
package cache

import (
	"fmt"
	"sort"
	"strings"

	"stash/internal/check"
	"stash/internal/coh"
	"stash/internal/energy"
	"stash/internal/llc"
	"stash/internal/memdata"
	"stash/internal/noc"
	"stash/internal/sim"
	"stash/internal/stats"
	"stash/internal/trace"
)

// Params configures an L1 cache.
type Params struct {
	SizeBytes    int
	Ways         int
	HitLat       sim.Cycle
	NumLLCBanks  int
	MSHRs        int  // maximum outstanding missed lines; bursts beyond this stall
	ChargeEnergy bool // false for CPU L1s: the paper does not measure them
}

// DefaultParams returns the paper's Table 2 GPU L1 configuration:
// 32 KB, 8-way, 1-cycle hits, 16 MSHRs (GPGPU-Sim's per-L1 default
// range), which bounds how deeply explicit copy bursts can pipeline.
func DefaultParams() Params {
	return Params{SizeBytes: 32 << 10, Ways: 8, HitLat: 1, NumLLCBanks: 16, MSHRs: 16, ChargeEnergy: true}
}

type line struct {
	addr  memdata.PAddr
	vals  [memdata.WordsPerLine]uint32
	state [memdata.WordsPerLine]coh.State
	live  bool
}

func (l *line) anyOwned() bool {
	for _, s := range l.state {
		if s.Owned() {
			return true
		}
	}
	return false
}

func (l *line) anyPending() bool {
	for _, s := range l.state {
		if s == coh.PendingReg {
			return true
		}
	}
	return false
}

type waiter struct {
	mask memdata.WordMask
	done func(vals [memdata.WordsPerLine]uint32)
}

// opKind discriminates pooled deferred operations.
type opKind uint8

const (
	opRetryLoad  opKind = iota // re-issue a structurally stalled Load
	opRetryStore               // re-issue a structurally stalled Store
	opDeliver                  // deliver vals to a load's done callback
)

// op is a pooled deferred operation: a retried access or a completing
// load. Its run closure is bound once when the op is first created, so
// scheduling a retry or a hit/fill completion allocates nothing in
// steady state.
type op struct {
	c       *Cache
	kind    opKind
	counted bool // replayed accesses are held in c.outstanding until re-issued
	addr    memdata.PAddr
	mask    memdata.WordMask
	vals    [memdata.WordsPerLine]uint32
	doneL   func(vals [memdata.WordsPerLine]uint32)
	doneS   func()
	run     func()
}

// fire copies the op's fields out, releases it, and then performs the
// operation: the op is already reusable while the retried access or the
// caller's callback runs (either may acquire ops itself).
func (o *op) fire() {
	c := o.c
	kind, counted, addr, mask, vals := o.kind, o.counted, o.addr, o.mask, o.vals
	doneL, doneS := o.doneL, o.doneS
	o.counted = false
	o.doneL, o.doneS = nil, nil
	c.opFree = append(c.opFree, o)
	if counted {
		c.outstanding--
	}
	switch kind {
	case opRetryLoad:
		c.Load(addr, mask, doneL)
	case opRetryStore:
		c.Store(addr, mask, vals, doneS)
	case opDeliver:
		doneL(vals)
	}
	if counted {
		c.checkDrained()
	}
}

func (c *Cache) newOp() *op {
	if n := len(c.opFree); n > 0 {
		o := c.opFree[n-1]
		c.opFree = c.opFree[:n-1]
		return o
	}
	o := &op{c: c}
	o.run = o.fire
	return o
}

type mshr struct {
	requested memdata.WordMask // words asked of the LLC, not yet arrived
	waiters   []waiter
	born      sim.Cycle // cycle the entry was allocated, for age checks
}

// Cache is one L1, attached to its node's router as coh.ToL1.
type Cache struct {
	eng  *sim.Engine
	net  *noc.Network
	node int
	comp coh.Component
	p    Params
	acct *energy.Account
	// sets hold LRU order (front = MRU). Line structs come from the
	// preallocated linePool and are reused in place on eviction and
	// after WritebackAll, so the steady-state access path never
	// allocates: a set slice is truncated rather than nilled, keeping
	// its dead line pointers in capacity for the next allocate.
	sets     []([]*line)
	linePool []line
	usedLine int // lines handed out of linePool so far
	mshrs    map[memdata.PAddr]*mshr
	mshrFree []*mshr // retired MSHRs, reused to keep misses allocation-free
	opFree   []*op   // pooled deferred operations (retries, load completions)
	// pendingReg tracks words with registration requests in flight.
	pendingReg  map[memdata.PAddr]memdata.WordMask
	wbuf        *coh.WBBuffer
	outstanding int // registrations + writebacks in flight
	drainWait   []func()
	chk         *check.Checker

	tsnk         *trace.Sink
	trMisses     *trace.Series
	trWritebacks *trace.Series

	hits       *stats.Counter
	misses     *stats.Counter
	evictions  *stats.Counter
	writebacks *stats.Counter
	remoteHits *stats.Counter
}

// New builds an L1 at the given node. comp is coh.ToL1 for a CPU/GPU L1
// (it exists so tests can instantiate two caches on one node).
func New(eng *sim.Engine, net *noc.Network, node int, name string, p Params, acct *energy.Account, set *stats.Set) *Cache {
	numLines := p.SizeBytes / memdata.LineBytes
	numSets := numLines / p.Ways
	if numSets == 0 {
		panic("cache: too small for associativity")
	}
	c := &Cache{
		eng:        eng,
		net:        net,
		node:       node,
		comp:       coh.ToL1,
		p:          p,
		acct:       acct,
		sets:       make([][]*line, numSets),
		linePool:   make([]line, numLines),
		mshrs:      make(map[memdata.PAddr]*mshr),
		pendingReg: make(map[memdata.PAddr]memdata.WordMask),
		wbuf:       coh.NewWBBuffer(),
		hits:       set.Counter(fmt.Sprintf("l1.%s.hits", name)),
		misses:     set.Counter(fmt.Sprintf("l1.%s.misses", name)),
		evictions:  set.Counter(fmt.Sprintf("l1.%s.evictions", name)),
		writebacks: set.Counter(fmt.Sprintf("l1.%s.writebacks", name)),
		remoteHits: set.Counter(fmt.Sprintf("l1.%s.remote_hits", name)),
	}
	ptrs := make([]*line, numLines)
	for i := range c.sets {
		c.sets[i] = ptrs[i*p.Ways : i*p.Ways : (i+1)*p.Ways]
	}
	return c
}

func (c *Cache) setIndex(addr memdata.PAddr) int {
	return int(addr/memdata.LineBytes) % len(c.sets)
}

func (c *Cache) lookup(addr memdata.PAddr) *line {
	s := c.sets[c.setIndex(addr)]
	for i, l := range s {
		if l.live && l.addr == addr {
			copy(s[1:i+1], s[:i])
			s[0] = l
			return l
		}
	}
	return nil
}

// allocate returns the resident line for addr, creating it (possibly
// evicting) if needed. It returns nil when every way is unevictable
// right now; the caller must retry.
func (c *Cache) allocate(addr memdata.PAddr) *line {
	if l := c.lookup(addr); l != nil {
		return l
	}
	idx := c.setIndex(addr)
	s := c.sets[idx]
	if len(s) < cap(s) {
		// Grow into capacity, reusing a dead line left behind a
		// truncation (WritebackAll) or taking a fresh one from the pool.
		s = s[:len(s)+1]
		l := s[len(s)-1]
		if l == nil {
			l = &c.linePool[c.usedLine]
			c.usedLine++
		}
		copy(s[1:], s[:len(s)-1])
		s[0] = l
		*l = line{addr: addr, live: true}
		c.sets[idx] = s
		return l
	}
	victim := -1
	for i := len(s) - 1; i >= 0; i-- {
		v := s[i]
		if v.anyPending() || c.mshrs[v.addr] != nil || c.wbuf.Busy(v.addr) {
			continue
		}
		victim = i
		break
	}
	if victim < 0 {
		return nil
	}
	l := s[victim]
	c.evict(l)
	copy(s[1:victim+1], s[:victim])
	s[0] = l
	*l = line{addr: addr, live: true}
	return l
}

func (c *Cache) evict(v *line) {
	c.evictions.Inc()
	var mask memdata.WordMask
	for i, st := range v.state {
		if st == coh.Registered {
			mask |= memdata.Bit(i)
		}
	}
	v.live = false
	if mask == 0 {
		return
	}
	c.writebacks.Inc()
	c.tsnk.Event(uint64(c.eng.Now()), trace.KWriteback, uint64(v.addr), 0)
	c.trWritebacks.Add(uint64(c.eng.Now()), 1)
	c.wbuf.Put(v.addr, mask, v.vals)
	c.outstanding++
	coh.Send(c.net, &coh.Packet{
		Type: coh.WBReq, Line: v.addr, Mask: mask, Vals: v.vals,
		SrcNode: c.node, SrcComp: c.comp,
		DstNode: llc.BankOf(v.addr, c.p.NumLLCBanks), DstComp: coh.ToLLC,
		MapIdx: -1,
	})
}

// replay re-issues a structurally stalled access a few cycles later.
// The queued access counts as outstanding so a drain cannot complete
// (and the next phase begin) before it has actually issued.
func (c *Cache) replay(o *op) {
	o.counted = true
	c.outstanding++
	c.eng.Schedule(4, o.run)
}

func (c *Cache) chargeAccess(hit bool) {
	if !c.p.ChargeEnergy {
		return
	}
	c.acct.Add(energy.TLBAccess, 1)
	if hit {
		c.acct.Add(energy.L1Hit, 1)
	} else {
		c.acct.Add(energy.L1Miss, 1)
	}
}

// Load requests the masked words of the line at addr. done receives the
// word values (indexed by position within the line) once all are
// present. Hits complete after HitLat.
func (c *Cache) Load(addr memdata.PAddr, mask memdata.WordMask, done func(vals [memdata.WordsPerLine]uint32)) {
	if addr != memdata.LineOf(addr) {
		panic("cache: Load address not line-aligned")
	}
	l := c.allocate(addr)
	if l == nil {
		o := c.newOp()
		o.kind, o.addr, o.mask, o.doneL = opRetryLoad, addr, mask, done
		c.eng.Schedule(4, o.run)
		return
	}
	missing := memdata.WordMask(0)
	fetch := memdata.WordMask(0)
	for i := 0; i < memdata.WordsPerLine; i++ {
		if mask.Has(i) && !l.state[i].Readable() {
			missing |= memdata.Bit(i)
		}
		if l.state[i] == coh.Invalid {
			fetch |= memdata.Bit(i)
		}
	}
	if missing == 0 {
		c.hits.Inc()
		c.chargeAccess(true)
		o := c.newOp()
		o.kind, o.vals, o.doneL = opDeliver, l.vals, done
		c.eng.Schedule(c.p.HitLat, o.run)
		return
	}
	m := c.mshrs[addr]
	if m == nil {
		if c.p.MSHRs > 0 && len(c.mshrs) >= c.p.MSHRs {
			// All miss-status registers busy: the access replays.
			o := c.newOp()
			o.kind, o.addr, o.mask, o.doneL = opRetryLoad, addr, mask, done
			c.replay(o)
			return
		}
		if n := len(c.mshrFree); n > 0 {
			m = c.mshrFree[n-1]
			c.mshrFree = c.mshrFree[:n-1]
		} else {
			m = &mshr{}
		}
		m.born = c.eng.Now()
		c.mshrs[addr] = m
		c.tsnk.Event(uint64(m.born), trace.KAccessBegin, uint64(addr), 0)
	}
	c.misses.Inc()
	c.tsnk.Event(uint64(c.eng.Now()), trace.KMiss, uint64(addr), 0)
	c.trMisses.Add(uint64(c.eng.Now()), 1)
	c.chargeAccess(false)
	// A miss fetches the whole line (line-granularity transfer, as in
	// the paper's line-based DeNovo): unlike the stash, the cache cannot
	// fetch compactly, which is exactly the Table 1 contrast.
	need := (missing | fetch) &^ m.requested
	m.waiters = append(m.waiters, waiter{mask: mask, done: done})
	if need != 0 {
		m.requested |= need
		coh.Send(c.net, &coh.Packet{
			Type: coh.ReadReq, Line: addr, Mask: need,
			SrcNode: c.node, SrcComp: c.comp,
			DstNode: llc.BankOf(addr, c.p.NumLLCBanks), DstComp: coh.ToLLC,
			MapIdx: -1,
		})
	}
}

// Store writes the masked words. done is called once the data is
// accepted locally (after HitLat); registration of newly owned words
// completes in the background and is awaited by Drain.
func (c *Cache) Store(addr memdata.PAddr, mask memdata.WordMask, vals [memdata.WordsPerLine]uint32, done func()) {
	if addr != memdata.LineOf(addr) {
		panic("cache: Store address not line-aligned")
	}
	l := c.allocate(addr)
	if l == nil {
		o := c.newOp()
		o.kind, o.addr, o.mask, o.vals, o.doneS = opRetryStore, addr, mask, vals, done
		c.eng.Schedule(4, o.run)
		return
	}
	if c.p.MSHRs > 0 && len(c.pendingReg) >= c.p.MSHRs {
		if _, merging := c.pendingReg[addr]; !merging {
			// Store buffer full of in-flight registrations: replay.
			o := c.newOp()
			o.kind, o.addr, o.mask, o.vals, o.doneS = opRetryStore, addr, mask, vals, done
			c.replay(o)
			return
		}
	}
	needReg := memdata.WordMask(0)
	for i := 0; i < memdata.WordsPerLine; i++ {
		if !mask.Has(i) {
			continue
		}
		l.vals[i] = vals[i]
		if !l.state[i].Owned() {
			l.state[i] = coh.PendingReg
			needReg |= memdata.Bit(i)
		}
	}
	if needReg == 0 {
		c.hits.Inc()
		c.chargeAccess(true)
	} else {
		c.misses.Inc()
		c.tsnk.Event(uint64(c.eng.Now()), trace.KMiss, uint64(addr), 0)
		c.trMisses.Add(uint64(c.eng.Now()), 1)
		c.chargeAccess(false)
		pending := c.pendingReg[addr]
		newReq := needReg &^ pending
		c.pendingReg[addr] = pending | needReg
		if newReq != 0 {
			c.outstanding++
			coh.Send(c.net, &coh.Packet{
				Type: coh.RegReq, Line: addr, Mask: newReq,
				SrcNode: c.node, SrcComp: c.comp,
				DstNode: llc.BankOf(addr, c.p.NumLLCBanks), DstComp: coh.ToLLC,
				MapIdx: -1,
			})
		}
	}
	c.eng.Schedule(c.p.HitLat, done)
}

// HandlePacket implements coh.Handler for LLC responses and remote
// requests.
func (c *Cache) HandlePacket(p *coh.Packet) {
	switch p.Type {
	case coh.DataResp:
		c.fill(p)
	case coh.RegAck:
		c.regAck(p)
	case coh.WBAck:
		c.wbuf.Release(p.Line, p.Mask)
		c.outstanding--
		c.chk.Progress()
		c.checkDrained()
	case coh.FwdReadReq:
		c.serveRemote(p)
	case coh.OwnerInv:
		c.ownerInv(p)
	default:
		panic("cache: unexpected packet " + p.Type.String())
	}
}

func (c *Cache) fill(p *coh.Packet) {
	c.chk.Progress()
	c.tsnk.Event(uint64(c.eng.Now()), trace.KFill, uint64(p.Line), 0)
	l := c.lookup(p.Line)
	if l != nil {
		for i := 0; i < memdata.WordsPerLine; i++ {
			if p.Mask.Has(i) && l.state[i] == coh.Invalid {
				l.vals[i] = p.Vals[i]
				l.state[i] = coh.Shared
			}
		}
	}
	m := c.mshrs[p.Line]
	if m == nil {
		return
	}
	m.requested &^= p.Mask
	if l == nil {
		// The line was somehow dropped; waiters will be answered from the
		// response values directly (possible only if evicted mid-flight,
		// which allocate() prevents; keep as a defensive path).
		return
	}
	remaining := m.waiters[:0]
	for _, w := range m.waiters {
		ready := true
		for i := 0; i < memdata.WordsPerLine; i++ {
			if w.mask.Has(i) && !l.state[i].Readable() {
				ready = false
				break
			}
		}
		if ready {
			o := c.newOp()
			o.kind, o.vals, o.doneL = opDeliver, l.vals, w.done
			c.eng.Schedule(c.p.HitLat, o.run)
		} else {
			remaining = append(remaining, w)
		}
	}
	m.waiters = remaining
	if len(m.waiters) == 0 && m.requested == 0 {
		delete(c.mshrs, p.Line)
		c.retireMSHR(m)
		c.tsnk.Event(uint64(c.eng.Now()), trace.KAccessEnd, uint64(p.Line), 0)
		c.checkDrained()
	}
}

// retireMSHR returns a drained MSHR to the free list. The waiter slice
// keeps its capacity but drops its closures so they can be collected.
func (c *Cache) retireMSHR(m *mshr) {
	for i := range m.waiters {
		m.waiters[i] = waiter{}
	}
	m.waiters = m.waiters[:0]
	m.requested = 0
	c.mshrFree = append(c.mshrFree, m)
}

func (c *Cache) regAck(p *coh.Packet) {
	c.chk.Progress()
	if l := c.lookup(p.Line); l != nil {
		for i := 0; i < memdata.WordsPerLine; i++ {
			if p.Mask.Has(i) && l.state[i] == coh.PendingReg {
				l.state[i] = coh.Registered
			}
		}
	}
	rem := c.pendingReg[p.Line] &^ p.Mask
	if rem == 0 {
		delete(c.pendingReg, p.Line)
	} else {
		c.pendingReg[p.Line] = rem
	}
	c.outstanding--
	c.checkDrained()
}

func (c *Cache) serveRemote(p *coh.Packet) {
	c.remoteHits.Inc()
	var vals [memdata.WordsPerLine]uint32
	served := memdata.WordMask(0)
	if l := c.lookup(p.Line); l != nil {
		for i := 0; i < memdata.WordsPerLine; i++ {
			if p.Mask.Has(i) && l.state[i].Owned() {
				vals[i] = l.vals[i]
				served |= memdata.Bit(i)
			}
		}
	}
	if rem := p.Mask &^ served; rem != 0 {
		bufMask, bufVals := c.wbuf.Lookup(p.Line, rem)
		for i := 0; i < memdata.WordsPerLine; i++ {
			if bufMask.Has(i) {
				vals[i] = bufVals[i]
				served |= memdata.Bit(i)
			}
		}
	}
	if served != p.Mask {
		panic(fmt.Sprintf("cache %d: forwarded read for words we no longer own (line %#x mask %v served %v)",
			c.node, uint64(p.Line), p.Mask, served))
	}
	if c.p.ChargeEnergy {
		c.acct.Add(energy.L1Hit, 1)
	}
	coh.Send(c.net, &coh.Packet{
		Type: coh.DataResp, Line: p.Line, Mask: p.Mask, Vals: vals,
		SrcNode: c.node, SrcComp: c.comp,
		DstNode: p.ReqNode, DstComp: p.ReqComp,
	})
}

func (c *Cache) ownerInv(p *coh.Packet) {
	if l := c.lookup(p.Line); l != nil {
		for i := 0; i < memdata.WordsPerLine; i++ {
			if p.Mask.Has(i) && l.state[i] == coh.Registered {
				l.state[i] = coh.Invalid
			}
		}
	}
}

// SelfInvalidate drops all Shared words (DeNovo self-invalidation at a
// synchronization point); Registered words are kept (paper Section 4.3).
func (c *Cache) SelfInvalidate() {
	for _, s := range c.sets {
		for _, l := range s {
			if !l.live {
				continue
			}
			for i := range l.state {
				if l.state[i] == coh.Shared {
					l.state[i] = coh.Invalid
				}
			}
		}
	}
}

// WritebackAll lazily writes back every Registered word and invalidates
// the cache. Used for end-of-run verification and by ablations. Sets
// are truncated, not released: the dead lines stay in each slice's
// capacity and are reused by later allocates.
func (c *Cache) WritebackAll() {
	for i, s := range c.sets {
		for _, l := range s {
			if l.live {
				c.evict(l)
			}
		}
		c.sets[i] = s[:0]
	}
}

// Drain calls done once every outstanding registration, fill, and
// writeback has been acknowledged.
func (c *Cache) Drain(done func()) {
	c.drainWait = append(c.drainWait, done)
	c.checkDrained()
}

func (c *Cache) checkDrained() {
	if c.outstanding != 0 || len(c.mshrs) != 0 || len(c.drainWait) == 0 {
		return
	}
	waiters := c.drainWait
	c.drainWait = nil
	for _, w := range waiters {
		c.eng.Schedule(0, w)
	}
}

// SetChecker attaches the self-check layer; a nil checker (the
// default) costs one nil comparison on each completion.
func (c *Cache) SetChecker(chk *check.Checker) { c.chk = chk }

// SetTrace attaches an event sink. A nil sink (the default) leaves
// every instrumented site a nil-check no-op.
func (c *Cache) SetTrace(snk *trace.Sink) {
	c.tsnk = snk
	c.trMisses = snk.Series("misses")
	c.trWritebacks = snk.Series("writebacks")
}

// Outstanding reports in-flight transactions the cache is waiting on
// (fills, registrations, writebacks, replayed accesses), for the
// watchdog's work-pending gate.
func (c *Cache) Outstanding() int { return c.outstanding + len(c.mshrs) }

// CheckInvariants verifies the cache's structural invariants without
// mutating anything (in particular, without the LRU-refreshing lookup):
//
//   - every MSHR has work attached (requested words or waiters) and is
//     no older than ageBound (0 disables the age check);
//   - every word with a registration in flight per pendingReg is in
//     PendingReg state if its line is resident;
//   - a non-empty writeback buffer implies outstanding transactions;
//   - no line is resident twice within a set.
func (c *Cache) CheckInvariants(now, ageBound sim.Cycle) error {
	for addr, m := range c.mshrs {
		if m.requested == 0 && len(m.waiters) == 0 {
			return fmt.Errorf("mshr %#x: no requested words and no waiters", addr)
		}
		if ageBound > 0 && now-m.born > ageBound {
			return fmt.Errorf("mshr %#x: age %d exceeds bound %d (requested %016b, %d waiters)",
				addr, now-m.born, ageBound, m.requested, len(m.waiters))
		}
	}
	for addr, mask := range c.pendingReg {
		if mask == 0 {
			return fmt.Errorf("pendingReg %#x: empty mask", addr)
		}
		if l := c.peekLine(addr); l != nil {
			for i := 0; i < memdata.WordsPerLine; i++ {
				if mask.Has(i) && l.state[i] != coh.PendingReg {
					return fmt.Errorf("line %#x word %d: registration in flight but state is %v", addr, i, l.state[i])
				}
			}
		}
	}
	if c.wbuf.Len() > 0 && c.outstanding == 0 {
		return fmt.Errorf("writeback buffer holds %d lines with nothing outstanding", c.wbuf.Len())
	}
	if err := c.wbuf.CheckInvariants(); err != nil {
		return err
	}
	for si, s := range c.sets {
		for i, l := range s {
			if !l.live {
				continue
			}
			for j := i + 1; j < len(s); j++ {
				if s[j].live && s[j].addr == l.addr {
					return fmt.Errorf("set %d: line %#x resident twice", si, l.addr)
				}
			}
		}
	}
	return nil
}

// CheckQuiescent verifies the cache has fully drained: no outstanding
// transactions, no MSHRs, no pending registrations, empty writeback
// buffer. It runs at kernel/phase boundaries.
func (c *Cache) CheckQuiescent() error {
	if c.outstanding != 0 {
		return fmt.Errorf("%d transactions still outstanding", c.outstanding)
	}
	if n := len(c.mshrs); n != 0 {
		return fmt.Errorf("%d mshrs still live", n)
	}
	if n := len(c.pendingReg); n != 0 {
		return fmt.Errorf("%d registrations still pending", n)
	}
	if n := c.wbuf.Len(); n != 0 {
		return fmt.Errorf("writeback buffer still holds %d lines", n)
	}
	return nil
}

// peekLine finds addr's resident line without refreshing LRU.
func (c *Cache) peekLine(addr memdata.PAddr) *line {
	for _, l := range c.sets[c.setIndex(addr)] {
		if l.live && l.addr == addr {
			return l
		}
	}
	return nil
}

// OwnsWord reports whether the word at addr is held in Registered
// state, without mutating LRU order. Cross-structure ownership audits
// use it to confirm the LLC's registry against the cache's own state.
func (c *Cache) OwnsWord(addr memdata.PAddr) bool {
	l := c.peekLine(memdata.LineOf(addr))
	return l != nil && l.state[memdata.WordIndex(addr)] == coh.Registered
}

// DebugString renders the cache's transient state for failure dumps.
// Map iterations are sorted so the dump is deterministic.
func (c *Cache) DebugString() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "outstanding=%d mshrs=%d pending-reg=%d wbuf=%d drain-waiters=%d",
		c.outstanding, len(c.mshrs), len(c.pendingReg), c.wbuf.Len(), len(c.drainWait))
	addrs := make([]memdata.PAddr, 0, len(c.mshrs))
	for a := range c.mshrs {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		m := c.mshrs[a]
		fmt.Fprintf(&sb, "\nmshr %#x requested=%016b waiters=%d born=%d", a, m.requested, len(m.waiters), m.born)
	}
	addrs = addrs[:0]
	for a := range c.pendingReg {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		fmt.Fprintf(&sb, "\npending-reg %#x mask=%016b", a, c.pendingReg[a])
	}
	return sb.String()
}

// Peek returns the cached value and state of the word at addr, for tests.
func (c *Cache) Peek(addr memdata.PAddr) (uint32, coh.State, bool) {
	l := c.lookup(memdata.LineOf(addr))
	if l == nil {
		return 0, coh.Invalid, false
	}
	w := memdata.WordIndex(addr)
	return l.vals[w], l.state[w], true
}
