// Package cache implements the L1 data caches (GPU CU and CPU core)
// with the DeNovo word-granularity coherence protocol: line-granularity
// tags, per-word Invalid/Shared/Registered state, registration on store
// misses, self-invalidation of Shared words at kernel boundaries, and
// lazy writeback of Registered words on eviction.
//
// The cache is physically indexed and tagged: every access pays a TLB
// lookup and a tag comparison, which is exactly the energy overhead the
// stash avoids (paper Table 1).
package cache

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"stash/internal/check"
	"stash/internal/coh"
	"stash/internal/energy"
	"stash/internal/llc"
	"stash/internal/memdata"
	"stash/internal/noc"
	"stash/internal/sim"
	"stash/internal/stats"
	"stash/internal/trace"
)

// Params configures an L1 cache.
type Params struct {
	SizeBytes    int
	Ways         int
	HitLat       sim.Cycle
	NumLLCBanks  int
	MSHRs        int  // maximum outstanding missed lines; bursts beyond this stall
	ChargeEnergy bool // false for CPU L1s: the paper does not measure them
	// ReadExtra and WriteExtra add technology-dependent cycles on top of
	// HitLat: ReadExtra delays load completions (hit and fill delivery),
	// WriteExtra delays store accepts. Zero (the default SRAM baseline)
	// is bit-identical to the pre-technology timing model. Coherence
	// packet injection times are never perturbed: writeback sends stay
	// synchronous so the protocol's per-flow ordering (a WBReq must not
	// reorder against a later RegReq of the same line) is preserved by
	// construction.
	ReadExtra  sim.Cycle
	WriteExtra sim.Cycle
	// TechEnergy switches energy charging from the unified L1Hit/L1Miss
	// classes to the read/write-split classes (L1ReadHit etc.), so
	// asymmetric technologies price loads and stores differently. Off by
	// default: the split classes then stay at zero count, keeping the
	// default energy total bit-identical.
	TechEnergy bool
}

// DefaultParams returns the paper's Table 2 GPU L1 configuration:
// 32 KB, 8-way, 1-cycle hits, 16 MSHRs (GPGPU-Sim's per-L1 default
// range), which bounds how deeply explicit copy bursts can pipeline.
func DefaultParams() Params {
	return Params{SizeBytes: 32 << 10, Ways: 8, HitLat: 1, NumLLCBanks: 16, MSHRs: 16, ChargeEnergy: true}
}

// line keeps per-word DeNovo state as three word masks instead of a
// [WordsPerLine]coh.State array: a word is Shared, Registered, or
// PendingReg when its bit is set in the corresponding mask, Invalid
// when it appears in none. The masks are mutually exclusive. This
// turns every per-word state loop on the access path into one or two
// mask operations.
type line struct {
	addr   memdata.PAddr
	vals   [memdata.WordsPerLine]uint32
	shared memdata.WordMask
	reg    memdata.WordMask
	pend   memdata.WordMask
	mshr   *mshr // the line's live MSHR, if any (mirrors c.mshrs[addr])
	// wbWait mirrors c.wbuf.Busy(addr): the previous tenant of this
	// address still has a writeback in flight, so the line cannot be
	// evicted (the WBBuffer entry would be clobbered by a second Put).
	// Set when the line is installed, cleared by the WBAck handler;
	// keeping it on the line makes the victim scan map-free.
	wbWait bool
}

// readable covers the words that can satisfy a load (any non-Invalid
// state, see coh.State.Readable).
func (l *line) readable() memdata.WordMask { return l.shared | l.reg | l.pend }

// owned covers Registered and PendingReg words (coh.State.Owned).
func (l *line) owned() memdata.WordMask { return l.reg | l.pend }

func (l *line) anyPending() bool { return l.pend != 0 }

// wordState reconstructs the coh.State of one word, for invariant
// checks, debugging, and Peek.
func (l *line) wordState(i int) coh.State {
	switch {
	case l.pend.Has(i):
		return coh.PendingReg
	case l.reg.Has(i):
		return coh.Registered
	case l.shared.Has(i):
		return coh.Shared
	default:
		return coh.Invalid
	}
}

type waiter struct {
	mask memdata.WordMask
	done func(vals [memdata.WordsPerLine]uint32)
}

// opKind discriminates pooled deferred operations.
type opKind uint8

const (
	opRetryLoad  opKind = iota // re-issue a structurally stalled Load
	opRetryStore               // re-issue a structurally stalled Store
	opDeliver                  // deliver vals to a load's done callback
)

// op is a pooled deferred operation: a retried access or a completing
// load. Its run closure is bound once when the op is first created, so
// scheduling a retry or a hit/fill completion allocates nothing in
// steady state.
type op struct {
	c       *Cache
	kind    opKind
	counted bool // replayed accesses are held in c.outstanding until re-issued
	addr    memdata.PAddr
	mask    memdata.WordMask
	vals    [memdata.WordsPerLine]uint32
	doneL   func(vals [memdata.WordsPerLine]uint32)
	doneS   func()
	run     func()
}

// fire performs the op's deferred operation. Retried accesses — the
// high-frequency kind during a structural replay storm — reuse the op
// in place when they stall again: no pool round-trip, no field copies,
// just another Schedule of the already-bound run closure. The op is
// released only once the access proceeds (or, for opDeliver, before
// the callback runs, which may itself acquire ops).
func (o *op) fire() {
	c := o.c
	counted := o.counted
	if counted {
		o.counted = false
		c.outstanding--
	}
	switch o.kind {
	case opRetryLoad:
		l := c.allocate(o.addr)
		switch {
		case l == nil:
			c.eng.Schedule(4, o.run)
		case !c.loadWith(l, o.addr, o.mask, o.doneL):
			o.counted = true
			c.outstanding++
			c.eng.Schedule(4, o.run)
		default:
			o.doneL = nil
			c.opFree = append(c.opFree, o)
		}
	case opRetryStore:
		l := c.allocate(o.addr)
		switch {
		case l == nil:
			c.eng.Schedule(4, o.run)
		case !c.storeWith(l, o.addr, o.mask, &o.vals, o.doneS):
			o.counted = true
			c.outstanding++
			c.eng.Schedule(4, o.run)
		default:
			o.doneS = nil
			c.opFree = append(c.opFree, o)
		}
	default: // opDeliver
		vals := o.vals
		doneL := o.doneL
		o.doneL = nil
		c.opFree = append(c.opFree, o)
		doneL(vals)
	}
	if counted {
		c.checkDrained()
	}
}

func (c *Cache) newOp() *op {
	if n := len(c.opFree); n > 0 {
		o := c.opFree[n-1]
		c.opFree = c.opFree[:n-1]
		return o
	}
	o := &op{c: c}
	o.run = o.fire
	return o
}

type mshr struct {
	requested memdata.WordMask // words asked of the LLC, not yet arrived
	waiters   []waiter
	born      sim.Cycle // cycle the entry was allocated, for age checks
}

// cset is one associativity set. Ways do not move: recency lives in a
// per-way LRU stamp (monotonically increasing use counter) instead of
// physical list order, so a hit refreshes recency with one word write
// and an eviction replaces a way in place — no shifting. The stamp
// order is exactly the move-to-front list order it replaced: front of
// the list = largest stamp, LRU victim = smallest stamp. The tag,
// stamp, and evictability arrays are parallel and contiguous so the
// hot scans never dereference a line pointer; within len the arrays
// always describe live lines.
type cset struct {
	addrs []memdata.PAddr
	lines []*line
	stamp []uint64
	// busyMask mirrors each way's evictability: bit w set when way w's
	// line has a pending registration, a live MSHR, or an in-flight
	// writeback of a previous tenant (wbWait). The victim scan reads
	// one word and iterates only the zero bits, so a replay storm's
	// repeated scans cost a couple of bit operations per evictable way.
	busyMask uint64
	// wbs counts writeback-buffer entries whose address maps to this
	// set. When zero — the overwhelmingly common case — installing a
	// line skips the buffer lookup entirely.
	wbs int32
	// failEpoch remembers the Cache.epoch at which a victim scan of
	// this set last came up empty. Until an event that can unblock a
	// way bumps the epoch, re-scanning is pointless and allocate
	// returns nil in O(1) — this is what keeps a structural replay
	// storm (retries every 4 cycles) cheap on the host.
	failEpoch uint64
}

// refreshBusy recomputes the evictability bit of addr's resident
// line l. Callers invoke it on the rare state transitions (MSHR
// create/retire, registration begin/ack, writeback ack), never on the
// per-retry storm path.
func (c *Cache) refreshBusy(addr memdata.PAddr, l *line) {
	s := &c.sets[c.setIndex(addr)]
	for i, a := range s.addrs {
		if a == addr {
			if l.pend != 0 || l.mshr != nil || l.wbWait {
				s.busyMask |= 1 << uint(i)
			} else {
				s.busyMask &^= 1 << uint(i)
			}
			return
		}
	}
}

// Cache is one L1, attached to its node's router as coh.ToL1.
type Cache struct {
	eng  *sim.Engine
	net  *noc.Network
	node int
	comp coh.Component
	p    Params
	acct *energy.Account
	// sets hold LRU order (front = MRU). Line structs come from the
	// preallocated linePool and are reused in place on eviction and
	// after WritebackAll, so the steady-state access path never
	// allocates: a set's slices are truncated rather than nilled,
	// keeping dead line pointers in capacity for the next allocate.
	sets    []cset
	setMask int // len(sets)-1 when a power of two, else -1 (modulo path)
	// epoch counts events that can turn an unevictable way evictable
	// (registration ack, fill retiring an MSHR, writeback ack). It
	// validates cset.failEpoch; a failed victim scan stays failed
	// until the epoch moves, so blocked-set retries skip the scan.
	epoch uint64
	// stampN issues LRU stamps: every hit or install takes the next
	// value, so larger stamp = more recently used.
	stampN   uint64
	linePool []line
	usedLine int // lines handed out of linePool so far
	mshrs    map[memdata.PAddr]*mshr
	mshrFree []*mshr // retired MSHRs, reused to keep misses allocation-free
	opFree   []*op   // pooled deferred operations (retries, load completions)
	// pendingReg tracks words with registration requests in flight.
	pendingReg  map[memdata.PAddr]memdata.WordMask
	wbuf        *coh.WBBuffer
	outstanding int // registrations + writebacks in flight
	drainWait   []func()
	chk         *check.Checker

	tsnk         *trace.Sink
	trMisses     *trace.Series
	trWritebacks *trace.Series

	hits       *stats.Counter
	misses     *stats.Counter
	evictions  *stats.Counter
	writebacks *stats.Counter
	remoteHits *stats.Counter
}

// New builds an L1 at the given node. comp is coh.ToL1 for a CPU/GPU L1
// (it exists so tests can instantiate two caches on one node).
func New(eng *sim.Engine, net *noc.Network, node int, name string, p Params, acct *energy.Account, set *stats.Set) *Cache {
	numLines := p.SizeBytes / memdata.LineBytes
	numSets := numLines / p.Ways
	if numSets == 0 {
		panic("cache: too small for associativity")
	}
	if p.Ways > 64 {
		panic("cache: associativity exceeds the 64-way busyMask word")
	}
	c := &Cache{
		eng:        eng,
		net:        net,
		node:       node,
		comp:       coh.ToL1,
		p:          p,
		acct:       acct,
		sets:       make([]cset, numSets),
		linePool:   make([]line, numLines),
		mshrs:      make(map[memdata.PAddr]*mshr),
		pendingReg: make(map[memdata.PAddr]memdata.WordMask),
		wbuf:       coh.NewWBBuffer(),
		epoch:      1, // so a zero-valued cset.failEpoch never matches
		hits:       set.Counter(fmt.Sprintf("l1.%s.hits", name)),
		misses:     set.Counter(fmt.Sprintf("l1.%s.misses", name)),
		evictions:  set.Counter(fmt.Sprintf("l1.%s.evictions", name)),
		writebacks: set.Counter(fmt.Sprintf("l1.%s.writebacks", name)),
		remoteHits: set.Counter(fmt.Sprintf("l1.%s.remote_hits", name)),
	}
	ptrs := make([]*line, numLines)
	tags := make([]memdata.PAddr, numLines)
	stamps := make([]uint64, numLines)
	for i := range c.sets {
		c.sets[i] = cset{
			addrs: tags[i*p.Ways : i*p.Ways : (i+1)*p.Ways],
			lines: ptrs[i*p.Ways : i*p.Ways : (i+1)*p.Ways],
			stamp: stamps[i*p.Ways : i*p.Ways : (i+1)*p.Ways],
		}
	}
	c.setMask = -1
	if numSets&(numSets-1) == 0 {
		c.setMask = numSets - 1
	}
	return c
}

func (c *Cache) setIndex(addr memdata.PAddr) int {
	if c.setMask >= 0 {
		return int(addr/memdata.LineBytes) & c.setMask
	}
	return int(addr/memdata.LineBytes) % len(c.sets)
}

func (c *Cache) lookup(addr memdata.PAddr) *line {
	s := &c.sets[c.setIndex(addr)]
	for i, a := range s.addrs {
		if a == addr {
			c.stampN++
			s.stamp[i] = c.stampN
			return s.lines[i]
		}
	}
	return nil
}

// allocate returns the resident line for addr, creating it (possibly
// evicting) if needed. It returns nil when every way is unevictable
// right now; the caller must retry.
func (c *Cache) allocate(addr memdata.PAddr) *line {
	if l := c.lookup(addr); l != nil {
		return l
	}
	return c.allocateMiss(addr)
}

// allocateMiss is allocate's non-resident path: find a way for addr,
// evicting if necessary. Callers must have established that addr is
// not resident.
func (c *Cache) allocateMiss(addr memdata.PAddr) *line {
	s := &c.sets[c.setIndex(addr)]
	if n := len(s.lines); n < cap(s.lines) {
		// Grow into capacity, reusing a dead line left behind a
		// truncation (WritebackAll) or taking a fresh one from the pool.
		s.lines = s.lines[:n+1]
		s.addrs = s.addrs[:n+1]
		s.stamp = s.stamp[:n+1]
		l := s.lines[n]
		if l == nil {
			l = &c.linePool[c.usedLine]
			c.usedLine++
		}
		return c.install(s, l, addr, n)
	}
	if s.failEpoch == c.epoch {
		return nil // nothing unblocked since the last failed scan
	}
	ev := ^s.busyMask & (uint64(1)<<uint(len(s.addrs)) - 1)
	if ev == 0 {
		s.failEpoch = c.epoch
		return nil
	}
	victim := bits.TrailingZeros64(ev)
	oldest := s.stamp[victim]
	for m := ev & (ev - 1); m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		if s.stamp[i] < oldest {
			victim, oldest = i, s.stamp[i]
		}
	}
	l := s.lines[victim]
	c.evict(s, l)
	return c.install(s, l, addr, victim)
}

// install resets l, resident at way w, as the freshest line for addr.
func (c *Cache) install(s *cset, l *line, addr memdata.PAddr, w int) *line {
	wbWait := s.wbs != 0 && c.wbuf.Busy(addr)
	*l = line{addr: addr, wbWait: wbWait}
	if wbWait {
		s.busyMask |= 1 << uint(w)
	} else {
		s.busyMask &^= 1 << uint(w)
	}
	s.lines[w] = l
	s.addrs[w] = addr
	c.stampN++
	s.stamp[w] = c.stampN
	return l
}

func (c *Cache) evict(s *cset, v *line) {
	c.evictions.Inc()
	mask := v.reg
	if mask == 0 {
		return
	}
	if !c.wbuf.Busy(v.addr) {
		s.wbs++ // a new writeback-buffer entry lands in this set
	}
	c.writebacks.Inc()
	c.tsnk.Event(uint64(c.eng.Now()), trace.KWriteback, uint64(v.addr), 0)
	c.trWritebacks.Add(uint64(c.eng.Now()), 1)
	c.wbuf.Put(v.addr, mask, v.vals)
	c.outstanding++
	coh.Send(c.net, &coh.Packet{
		Type: coh.WBReq, Line: v.addr, Mask: mask, Vals: v.vals,
		SrcNode: c.node, SrcComp: c.comp,
		DstNode: llc.BankOf(v.addr, c.p.NumLLCBanks), DstComp: coh.ToLLC,
		MapIdx: -1,
	})
}

// replay re-issues a structurally stalled access a few cycles later.
// The queued access counts as outstanding so a drain cannot complete
// (and the next phase begin) before it has actually issued.
func (c *Cache) replay(o *op) {
	o.counted = true
	c.outstanding++
	c.eng.Schedule(4, o.run)
}

func (c *Cache) chargeAccess(hit, write bool) {
	if !c.p.ChargeEnergy {
		return
	}
	c.acct.Add(energy.TLBAccess, 1)
	if c.p.TechEnergy {
		switch {
		case hit && !write:
			c.acct.Add(energy.L1ReadHit, 1)
		case hit && write:
			c.acct.Add(energy.L1WriteHit, 1)
		case !write:
			c.acct.Add(energy.L1ReadMiss, 1)
		default:
			c.acct.Add(energy.L1WriteMiss, 1)
		}
		return
	}
	if hit {
		c.acct.Add(energy.L1Hit, 1)
	} else {
		c.acct.Add(energy.L1Miss, 1)
	}
}

// Load requests the masked words of the line at addr. done receives the
// word values (indexed by position within the line) once all are
// present. Hits complete after HitLat.
func (c *Cache) Load(addr memdata.PAddr, mask memdata.WordMask, done func(vals [memdata.WordsPerLine]uint32)) {
	if addr != memdata.LineOf(addr) {
		panic("cache: Load address not line-aligned")
	}
	l := c.allocate(addr)
	if l == nil {
		o := c.newOp()
		o.kind, o.addr, o.mask, o.doneL = opRetryLoad, addr, mask, done
		c.eng.Schedule(4, o.run)
		return
	}
	if !c.loadWith(l, addr, mask, done) {
		o := c.newOp()
		o.kind, o.addr, o.mask, o.doneL = opRetryLoad, addr, mask, done
		c.replay(o)
	}
}

// loadWith runs the load against its resident line. It reports false —
// with no side effects — when every miss-status register is busy; the
// caller replays the access.
func (c *Cache) loadWith(l *line, addr memdata.PAddr, mask memdata.WordMask, done func(vals [memdata.WordsPerLine]uint32)) bool {
	readable := l.readable()
	missing := mask &^ readable
	fetch := memdata.MaskAll &^ readable
	if missing == 0 {
		c.hits.Inc()
		c.chargeAccess(true, false)
		o := c.newOp()
		o.kind, o.vals, o.doneL = opDeliver, l.vals, done
		c.eng.Schedule(c.p.HitLat+c.p.ReadExtra, o.run)
		return true
	}
	m := l.mshr // mirrors c.mshrs[addr]; the line outlives its MSHR
	if m == nil {
		if c.p.MSHRs > 0 && len(c.mshrs) >= c.p.MSHRs {
			return false // all miss-status registers busy
		}
		if n := len(c.mshrFree); n > 0 {
			m = c.mshrFree[n-1]
			c.mshrFree = c.mshrFree[:n-1]
		} else {
			m = &mshr{}
		}
		m.born = c.eng.Now()
		c.mshrs[addr] = m
		l.mshr = m
		c.refreshBusy(addr, l)
		c.tsnk.Event(uint64(m.born), trace.KAccessBegin, uint64(addr), 0)
	}
	c.misses.Inc()
	c.tsnk.Event(uint64(c.eng.Now()), trace.KMiss, uint64(addr), 0)
	c.trMisses.Add(uint64(c.eng.Now()), 1)
	c.chargeAccess(false, false)
	// A miss fetches the whole line (line-granularity transfer, as in
	// the paper's line-based DeNovo): unlike the stash, the cache cannot
	// fetch compactly, which is exactly the Table 1 contrast.
	need := (missing | fetch) &^ m.requested
	m.waiters = append(m.waiters, waiter{mask: mask, done: done})
	if need != 0 {
		m.requested |= need
		coh.Send(c.net, &coh.Packet{
			Type: coh.ReadReq, Line: addr, Mask: need,
			SrcNode: c.node, SrcComp: c.comp,
			DstNode: llc.BankOf(addr, c.p.NumLLCBanks), DstComp: coh.ToLLC,
			MapIdx: -1,
		})
	}
	return true
}

// Store writes the masked words. done is called once the data is
// accepted locally (after HitLat); registration of newly owned words
// completes in the background and is awaited by Drain.
func (c *Cache) Store(addr memdata.PAddr, mask memdata.WordMask, vals [memdata.WordsPerLine]uint32, done func()) {
	if addr != memdata.LineOf(addr) {
		panic("cache: Store address not line-aligned")
	}
	l := c.allocate(addr)
	if l == nil {
		o := c.newOp()
		o.kind, o.addr, o.mask, o.vals, o.doneS = opRetryStore, addr, mask, vals, done
		c.eng.Schedule(4, o.run)
		return
	}
	if !c.storeWith(l, addr, mask, &vals, done) {
		o := c.newOp()
		o.kind, o.addr, o.mask, o.vals, o.doneS = opRetryStore, addr, mask, vals, done
		c.replay(o)
	}
}

// storeWith runs the store against its resident line. It reports false
// — with no side effects — when the registration buffer is full and
// the line has no registration to merge with; the caller replays.
func (c *Cache) storeWith(l *line, addr memdata.PAddr, mask memdata.WordMask, vals *[memdata.WordsPerLine]uint32, done func()) bool {
	if c.p.MSHRs > 0 && len(c.pendingReg) >= c.p.MSHRs {
		if _, merging := c.pendingReg[addr]; !merging {
			return false // registration buffer full
		}
	}
	for m := mask; m != 0; m &= m - 1 {
		i := bits.TrailingZeros16(uint16(m))
		l.vals[i] = vals[i]
	}
	needReg := mask &^ l.owned()
	l.shared &^= needReg
	l.pend |= needReg
	if needReg != 0 {
		c.refreshBusy(addr, l)
	}
	if needReg == 0 {
		c.hits.Inc()
		c.chargeAccess(true, true)
	} else {
		c.misses.Inc()
		c.tsnk.Event(uint64(c.eng.Now()), trace.KMiss, uint64(addr), 0)
		c.trMisses.Add(uint64(c.eng.Now()), 1)
		c.chargeAccess(false, true)
		pending := c.pendingReg[addr]
		newReq := needReg &^ pending
		c.pendingReg[addr] = pending | needReg
		if newReq != 0 {
			c.outstanding++
			coh.Send(c.net, &coh.Packet{
				Type: coh.RegReq, Line: addr, Mask: newReq,
				SrcNode: c.node, SrcComp: c.comp,
				DstNode: llc.BankOf(addr, c.p.NumLLCBanks), DstComp: coh.ToLLC,
				MapIdx: -1,
			})
		}
	}
	c.eng.Schedule(c.p.HitLat+c.p.WriteExtra, done)
	return true
}

// HandlePacket implements coh.Handler for LLC responses and remote
// requests.
func (c *Cache) HandlePacket(p *coh.Packet) {
	switch p.Type {
	case coh.DataResp:
		c.fill(p)
	case coh.RegAck:
		c.regAck(p)
	case coh.WBAck:
		c.wbuf.Release(p.Line, p.Mask)
		if !c.wbuf.Busy(p.Line) {
			s := &c.sets[c.setIndex(p.Line)]
			s.wbs--
			for i, a := range s.addrs {
				if a == p.Line {
					l := s.lines[i]
					l.wbWait = false
					if l.pend == 0 && l.mshr == nil {
						s.busyMask &^= 1 << uint(i)
					}
					break
				}
			}
		}
		c.epoch++
		c.outstanding--
		c.chk.Progress()
		c.checkDrained()
	case coh.FwdReadReq:
		c.serveRemote(p)
	case coh.OwnerInv:
		c.ownerInv(p)
	default:
		panic("cache: unexpected packet " + p.Type.String())
	}
}

func (c *Cache) fill(p *coh.Packet) {
	c.chk.Progress()
	c.tsnk.Event(uint64(c.eng.Now()), trace.KFill, uint64(p.Line), 0)
	l := c.lookup(p.Line)
	if l != nil {
		take := p.Mask &^ l.readable() // only Invalid words accept fill data
		for m := take; m != 0; m &= m - 1 {
			i := bits.TrailingZeros16(uint16(m))
			l.vals[i] = p.Vals[i]
		}
		l.shared |= take
	}
	m := c.mshrs[p.Line]
	if m == nil {
		return
	}
	m.requested &^= p.Mask
	if l == nil {
		// The line was somehow dropped; waiters will be answered from the
		// response values directly (possible only if evicted mid-flight,
		// which allocate() prevents; keep as a defensive path).
		return
	}
	readable := l.readable()
	remaining := m.waiters[:0]
	for _, w := range m.waiters {
		if w.mask&^readable == 0 {
			o := c.newOp()
			o.kind, o.vals, o.doneL = opDeliver, l.vals, w.done
			c.eng.Schedule(c.p.HitLat+c.p.ReadExtra, o.run)
		} else {
			remaining = append(remaining, w)
		}
	}
	m.waiters = remaining
	if len(m.waiters) == 0 && m.requested == 0 {
		delete(c.mshrs, p.Line)
		l.mshr = nil
		c.refreshBusy(p.Line, l)
		c.epoch++
		c.retireMSHR(m)
		c.tsnk.Event(uint64(c.eng.Now()), trace.KAccessEnd, uint64(p.Line), 0)
		c.checkDrained()
	}
}

// retireMSHR returns a drained MSHR to the free list. The waiter slice
// keeps its capacity but drops its closures so they can be collected.
func (c *Cache) retireMSHR(m *mshr) {
	for i := range m.waiters {
		m.waiters[i] = waiter{}
	}
	m.waiters = m.waiters[:0]
	m.requested = 0
	c.mshrFree = append(c.mshrFree, m)
}

func (c *Cache) regAck(p *coh.Packet) {
	c.chk.Progress()
	if l := c.lookup(p.Line); l != nil {
		take := p.Mask & l.pend
		l.pend &^= take
		l.reg |= take
		c.refreshBusy(p.Line, l)
		c.epoch++
	}
	rem := c.pendingReg[p.Line] &^ p.Mask
	if rem == 0 {
		delete(c.pendingReg, p.Line)
	} else {
		c.pendingReg[p.Line] = rem
	}
	c.outstanding--
	c.checkDrained()
}

func (c *Cache) serveRemote(p *coh.Packet) {
	c.remoteHits.Inc()
	var vals [memdata.WordsPerLine]uint32
	served := memdata.WordMask(0)
	if l := c.lookup(p.Line); l != nil {
		served = p.Mask & l.owned()
		for m := served; m != 0; m &= m - 1 {
			i := bits.TrailingZeros16(uint16(m))
			vals[i] = l.vals[i]
		}
	}
	if rem := p.Mask &^ served; rem != 0 {
		bufMask, bufVals := c.wbuf.Lookup(p.Line, rem)
		for i := 0; i < memdata.WordsPerLine; i++ {
			if bufMask.Has(i) {
				vals[i] = bufVals[i]
				served |= memdata.Bit(i)
			}
		}
	}
	if served != p.Mask {
		panic(fmt.Sprintf("cache %d: forwarded read for words we no longer own (line %#x mask %v served %v)",
			c.node, uint64(p.Line), p.Mask, served))
	}
	if c.p.ChargeEnergy {
		if c.p.TechEnergy {
			c.acct.Add(energy.L1ReadHit, 1)
		} else {
			c.acct.Add(energy.L1Hit, 1)
		}
	}
	if c.p.ReadExtra > 0 {
		// Delay the response by the technology's read latency. The pooled
		// request packet is only valid during this call, so its addressing
		// fields are copied into the closure. All traffic from this cache
		// to the requester is DataResps delayed by the same constant, so
		// per-flow FIFO order is preserved.
		line, mask := p.Line, p.Mask
		reqNode, reqComp := p.ReqNode, p.ReqComp
		c.eng.Schedule(c.p.ReadExtra, func() {
			coh.Send(c.net, &coh.Packet{
				Type: coh.DataResp, Line: line, Mask: mask, Vals: vals,
				SrcNode: c.node, SrcComp: c.comp,
				DstNode: reqNode, DstComp: reqComp,
			})
		})
		return
	}
	coh.Send(c.net, &coh.Packet{
		Type: coh.DataResp, Line: p.Line, Mask: p.Mask, Vals: vals,
		SrcNode: c.node, SrcComp: c.comp,
		DstNode: p.ReqNode, DstComp: p.ReqComp,
	})
}

func (c *Cache) ownerInv(p *coh.Packet) {
	if l := c.lookup(p.Line); l != nil {
		l.reg &^= p.Mask // only Registered words drop to Invalid
	}
}

// SelfInvalidate drops all Shared words (DeNovo self-invalidation at a
// synchronization point); Registered words are kept (paper Section 4.3).
func (c *Cache) SelfInvalidate() {
	for i := range c.sets {
		for _, l := range c.sets[i].lines {
			l.shared = 0
		}
	}
}

// WritebackAll lazily writes back every Registered word and invalidates
// the cache. Used for end-of-run verification and by ablations. Sets
// are truncated, not released: the dead lines stay in each slice's
// capacity and are reused by later allocates.
func (c *Cache) WritebackAll() {
	for i := range c.sets {
		s := &c.sets[i]
		for _, l := range s.lines {
			c.evict(s, l)
		}
		s.lines = s.lines[:0]
		s.addrs = s.addrs[:0]
		s.stamp = s.stamp[:0]
		s.busyMask = 0
	}
}

// Drain calls done once every outstanding registration, fill, and
// writeback has been acknowledged.
func (c *Cache) Drain(done func()) {
	c.drainWait = append(c.drainWait, done)
	c.checkDrained()
}

func (c *Cache) checkDrained() {
	if c.outstanding != 0 || len(c.mshrs) != 0 || len(c.drainWait) == 0 {
		return
	}
	waiters := c.drainWait
	c.drainWait = nil
	for _, w := range waiters {
		c.eng.Schedule(0, w)
	}
}

// SetChecker attaches the self-check layer; a nil checker (the
// default) costs one nil comparison on each completion.
func (c *Cache) SetChecker(chk *check.Checker) { c.chk = chk }

// SetTrace attaches an event sink. A nil sink (the default) leaves
// every instrumented site a nil-check no-op.
func (c *Cache) SetTrace(snk *trace.Sink) {
	c.tsnk = snk
	c.trMisses = snk.Series("misses")
	c.trWritebacks = snk.Series("writebacks")
}

// Outstanding reports in-flight transactions the cache is waiting on
// (fills, registrations, writebacks, replayed accesses), for the
// watchdog's work-pending gate.
func (c *Cache) Outstanding() int { return c.outstanding + len(c.mshrs) }

// CheckInvariants verifies the cache's structural invariants without
// mutating anything (in particular, without the LRU-refreshing lookup):
//
//   - every MSHR has work attached (requested words or waiters) and is
//     no older than ageBound (0 disables the age check);
//   - every word with a registration in flight per pendingReg is in
//     PendingReg state if its line is resident;
//   - a non-empty writeback buffer implies outstanding transactions;
//   - no line is resident twice within a set.
func (c *Cache) CheckInvariants(now, ageBound sim.Cycle) error {
	for addr, m := range c.mshrs {
		if m.requested == 0 && len(m.waiters) == 0 {
			return fmt.Errorf("mshr %#x: no requested words and no waiters", addr)
		}
		if ageBound > 0 && now-m.born > ageBound {
			return fmt.Errorf("mshr %#x: age %d exceeds bound %d (requested %016b, %d waiters)",
				addr, now-m.born, ageBound, m.requested, len(m.waiters))
		}
	}
	for addr, mask := range c.pendingReg {
		if mask == 0 {
			return fmt.Errorf("pendingReg %#x: empty mask", addr)
		}
		if l := c.peekLine(addr); l != nil {
			if bad := mask &^ l.pend; bad != 0 {
				i := bits.TrailingZeros16(uint16(bad))
				return fmt.Errorf("line %#x word %d: registration in flight but state is %v", addr, i, l.wordState(i))
			}
		}
	}
	if c.wbuf.Len() > 0 && c.outstanding == 0 {
		return fmt.Errorf("writeback buffer holds %d lines with nothing outstanding", c.wbuf.Len())
	}
	if err := c.wbuf.CheckInvariants(); err != nil {
		return err
	}
	wbs := make(map[int]int32)
	c.wbuf.Each(func(line memdata.PAddr) { wbs[c.setIndex(line)]++ })
	for si := range c.sets {
		s := &c.sets[si]
		if s.wbs != wbs[si] {
			return fmt.Errorf("set %d: wbs %d disagrees with %d buffered writebacks", si, s.wbs, wbs[si])
		}
		for i, l := range s.lines {
			if l.addr != s.addrs[i] {
				return fmt.Errorf("set %d way %d: tag array %#x disagrees with line %#x", si, i, s.addrs[i], l.addr)
			}
			if l.wbWait != c.wbuf.Busy(l.addr) {
				return fmt.Errorf("line %#x: wbWait %v disagrees with writeback buffer", l.addr, l.wbWait)
			}
			if want := l.pend != 0 || l.mshr != nil || l.wbWait; s.busyMask&(1<<uint(i)) != 0 != want {
				return fmt.Errorf("set %d way %d: busy bit disagrees with line %#x state", si, i, l.addr)
			}
			for j := i + 1; j < len(s.lines); j++ {
				if s.addrs[j] == l.addr {
					return fmt.Errorf("set %d: line %#x resident twice", si, l.addr)
				}
			}
		}
	}
	return nil
}

// CheckQuiescent verifies the cache has fully drained: no outstanding
// transactions, no MSHRs, no pending registrations, empty writeback
// buffer. It runs at kernel/phase boundaries.
func (c *Cache) CheckQuiescent() error {
	if c.outstanding != 0 {
		return fmt.Errorf("%d transactions still outstanding", c.outstanding)
	}
	if n := len(c.mshrs); n != 0 {
		return fmt.Errorf("%d mshrs still live", n)
	}
	if n := len(c.pendingReg); n != 0 {
		return fmt.Errorf("%d registrations still pending", n)
	}
	if n := c.wbuf.Len(); n != 0 {
		return fmt.Errorf("writeback buffer still holds %d lines", n)
	}
	return nil
}

// peekLine finds addr's resident line without refreshing LRU.
func (c *Cache) peekLine(addr memdata.PAddr) *line {
	s := &c.sets[c.setIndex(addr)]
	for i, a := range s.addrs {
		if a == addr {
			return s.lines[i]
		}
	}
	return nil
}

// OwnsWord reports whether the word at addr is held in Registered
// state, without mutating LRU order. Cross-structure ownership audits
// use it to confirm the LLC's registry against the cache's own state.
func (c *Cache) OwnsWord(addr memdata.PAddr) bool {
	l := c.peekLine(memdata.LineOf(addr))
	return l != nil && l.reg.Has(memdata.WordIndex(addr))
}

// DebugString renders the cache's transient state for failure dumps.
// Map iterations are sorted so the dump is deterministic.
func (c *Cache) DebugString() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "outstanding=%d mshrs=%d pending-reg=%d wbuf=%d drain-waiters=%d",
		c.outstanding, len(c.mshrs), len(c.pendingReg), c.wbuf.Len(), len(c.drainWait))
	addrs := make([]memdata.PAddr, 0, len(c.mshrs))
	for a := range c.mshrs {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		m := c.mshrs[a]
		fmt.Fprintf(&sb, "\nmshr %#x requested=%016b waiters=%d born=%d", a, m.requested, len(m.waiters), m.born)
	}
	addrs = addrs[:0]
	for a := range c.pendingReg {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		fmt.Fprintf(&sb, "\npending-reg %#x mask=%016b", a, c.pendingReg[a])
	}
	return sb.String()
}

// Peek returns the cached value and state of the word at addr, for tests.
func (c *Cache) Peek(addr memdata.PAddr) (uint32, coh.State, bool) {
	l := c.lookup(memdata.LineOf(addr))
	if l == nil {
		return 0, coh.Invalid, false
	}
	w := memdata.WordIndex(addr)
	return l.vals[w], l.wordState(w), true
}
