// Package memdata defines the simulator's address types, cache-line
// geometry helpers, and the word-addressed backing memory (DRAM).
//
// The simulator is value-accurate: every load observes the value the
// coherence protocol says it should, so functional correctness of the
// stash, caches, and protocol is testable, not assumed.
package memdata

import (
	"fmt"
	"math/bits"
)

// VAddr is a virtual byte address.
type VAddr uint64

// PAddr is a physical byte address.
type PAddr uint64

// Cache-line geometry shared by every level of the hierarchy.
const (
	WordBytes    = 4  // the coherence and stash tracking granularity
	LineBytes    = 64 // cache line and stash chunk size
	WordsPerLine = LineBytes / WordBytes
)

// LineOf returns the line-aligned base of physical address a.
func LineOf(a PAddr) PAddr { return a &^ (LineBytes - 1) }

// WordOf returns the word-aligned base of physical address a.
func WordOf(a PAddr) PAddr { return a &^ (WordBytes - 1) }

// WordIndex returns the index (0..15) of address a's word within its line.
func WordIndex(a PAddr) int { return int(a%LineBytes) / WordBytes }

// VLineOf returns the line-aligned base of virtual address a.
func VLineOf(a VAddr) VAddr { return a &^ (LineBytes - 1) }

// VWordIndex returns the index of virtual address a's word within its line.
func VWordIndex(a VAddr) int { return int(a%LineBytes) / WordBytes }

// WordMask is a bitmask over the 16 words of a line.
type WordMask uint16

// MaskAll covers every word of a line.
const MaskAll WordMask = 1<<WordsPerLine - 1

// Bit returns the mask with only word i set.
func Bit(i int) WordMask { return 1 << uint(i) }

// Has reports whether word i is in the mask.
func (m WordMask) Has(i int) bool { return m&Bit(i) != 0 }

// Count returns the number of words in the mask.
func (m WordMask) Count() int { return bits.OnesCount16(uint16(m)) }

// Memory page geometry: 4 KB pages, the same granularity the vm package
// maps at, so a page is the natural unit of physical locality. A cache
// line (64 B) never straddles a page.
const (
	memPageShift = 12
	memPageBytes = 1 << memPageShift
	memPageWords = memPageBytes / WordBytes
)

// mpage is one resident 4 KB page: a dense word array plus a
// written-word bitmap that keeps Footprint exact (only words actually
// stored count, not whole pages).
type mpage struct {
	vals    [memPageWords]uint32
	written [memPageWords / 64]uint64
}

// Memory is the simulated DRAM: a sparse, word-granularity physical
// memory holding 32-bit values. Unwritten words read as zero.
//
// Storage is paged: one map lookup locates a 4 KB page (with a
// last-page cache making streaming access map-free) and line transfers
// become a single 16-word copy instead of 16 per-word map operations.
type Memory struct {
	pages    map[PAddr]*mpage
	lastKey  PAddr
	lastPage *mpage // page cache; nil until the first page exists
	written  int    // distinct words ever written, for Footprint
}

// NewMemory returns an empty memory.
func NewMemory() *Memory { return &Memory{pages: make(map[PAddr]*mpage)} }

// page returns the resident page containing a, or nil.
func (m *Memory) page(a PAddr) *mpage {
	key := a >> memPageShift
	if m.lastPage != nil && key == m.lastKey {
		return m.lastPage
	}
	p := m.pages[key]
	if p != nil {
		m.lastKey, m.lastPage = key, p
	}
	return p
}

// ensurePage returns the page containing a, creating it if needed.
func (m *Memory) ensurePage(a PAddr) *mpage {
	if p := m.page(a); p != nil {
		return p
	}
	key := a >> memPageShift
	p := &mpage{}
	m.pages[key] = p
	m.lastKey, m.lastPage = key, p
	return p
}

// markWritten records a store to word index wi of page p, keeping the
// distinct-words-written count exact.
func (m *Memory) markWritten(p *mpage, wi int) {
	bit := uint64(1) << (uint(wi) & 63)
	if p.written[wi>>6]&bit == 0 {
		p.written[wi>>6] |= bit
		m.written++
	}
}

// wordIndex returns a's word index within its page.
func wordIndex(a PAddr) int {
	return int(a&(memPageBytes-1)) / WordBytes
}

// LoadWord returns the 32-bit word at physical address a (word aligned).
func (m *Memory) LoadWord(a PAddr) uint32 {
	checkAligned(a)
	p := m.page(a)
	if p == nil {
		return 0
	}
	return p.vals[wordIndex(a)]
}

// StoreWord writes the 32-bit word at physical address a (word aligned).
func (m *Memory) StoreWord(a PAddr, v uint32) {
	checkAligned(a)
	p := m.ensurePage(a)
	wi := wordIndex(a)
	m.markWritten(p, wi)
	p.vals[wi] = v
}

// LoadLine reads the full line containing a.
func (m *Memory) LoadLine(a PAddr) [WordsPerLine]uint32 {
	var out [WordsPerLine]uint32
	p := m.page(a)
	if p == nil {
		return out
	}
	wi := wordIndex(LineOf(a))
	copy(out[:], p.vals[wi:wi+WordsPerLine])
	return out
}

// StoreMasked writes the words selected by mask from vals into the line
// containing a. vals is indexed by word position within the line.
func (m *Memory) StoreMasked(a PAddr, mask WordMask, vals [WordsPerLine]uint32) {
	if mask == 0 {
		return
	}
	p := m.ensurePage(a)
	base := wordIndex(LineOf(a))
	for mk := mask; mk != 0; mk &= mk - 1 {
		i := bits.TrailingZeros16(uint16(mk))
		wi := base + i
		m.markWritten(p, wi)
		p.vals[wi] = vals[i]
	}
}

// Footprint reports the number of distinct words ever written.
func (m *Memory) Footprint() int { return m.written }

func checkAligned(a PAddr) {
	if a%WordBytes != 0 {
		panic(fmt.Sprintf("memdata: unaligned word address %#x", uint64(a)))
	}
}
