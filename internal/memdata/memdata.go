// Package memdata defines the simulator's address types, cache-line
// geometry helpers, and the word-addressed backing memory (DRAM).
//
// The simulator is value-accurate: every load observes the value the
// coherence protocol says it should, so functional correctness of the
// stash, caches, and protocol is testable, not assumed.
package memdata

import "fmt"

// VAddr is a virtual byte address.
type VAddr uint64

// PAddr is a physical byte address.
type PAddr uint64

// Cache-line geometry shared by every level of the hierarchy.
const (
	WordBytes    = 4  // the coherence and stash tracking granularity
	LineBytes    = 64 // cache line and stash chunk size
	WordsPerLine = LineBytes / WordBytes
)

// LineOf returns the line-aligned base of physical address a.
func LineOf(a PAddr) PAddr { return a &^ (LineBytes - 1) }

// WordOf returns the word-aligned base of physical address a.
func WordOf(a PAddr) PAddr { return a &^ (WordBytes - 1) }

// WordIndex returns the index (0..15) of address a's word within its line.
func WordIndex(a PAddr) int { return int(a%LineBytes) / WordBytes }

// VLineOf returns the line-aligned base of virtual address a.
func VLineOf(a VAddr) VAddr { return a &^ (LineBytes - 1) }

// VWordIndex returns the index of virtual address a's word within its line.
func VWordIndex(a VAddr) int { return int(a%LineBytes) / WordBytes }

// WordMask is a bitmask over the 16 words of a line.
type WordMask uint16

// MaskAll covers every word of a line.
const MaskAll WordMask = 1<<WordsPerLine - 1

// Bit returns the mask with only word i set.
func Bit(i int) WordMask { return 1 << uint(i) }

// Has reports whether word i is in the mask.
func (m WordMask) Has(i int) bool { return m&Bit(i) != 0 }

// Count returns the number of words in the mask.
func (m WordMask) Count() int {
	n := 0
	for i := 0; i < WordsPerLine; i++ {
		if m.Has(i) {
			n++
		}
	}
	return n
}

// Memory is the simulated DRAM: a sparse, word-granularity physical
// memory holding 32-bit values. Unwritten words read as zero.
type Memory struct {
	words map[PAddr]uint32
}

// NewMemory returns an empty memory.
func NewMemory() *Memory { return &Memory{words: make(map[PAddr]uint32)} }

// LoadWord returns the 32-bit word at physical address a (word aligned).
func (m *Memory) LoadWord(a PAddr) uint32 {
	checkAligned(a)
	return m.words[a]
}

// StoreWord writes the 32-bit word at physical address a (word aligned).
func (m *Memory) StoreWord(a PAddr, v uint32) {
	checkAligned(a)
	m.words[a] = v
}

// LoadLine reads the full line containing a.
func (m *Memory) LoadLine(a PAddr) [WordsPerLine]uint32 {
	base := LineOf(a)
	var out [WordsPerLine]uint32
	for i := 0; i < WordsPerLine; i++ {
		out[i] = m.words[base+PAddr(i*WordBytes)]
	}
	return out
}

// StoreMasked writes the words selected by mask from vals into the line
// containing a. vals is indexed by word position within the line.
func (m *Memory) StoreMasked(a PAddr, mask WordMask, vals [WordsPerLine]uint32) {
	base := LineOf(a)
	for i := 0; i < WordsPerLine; i++ {
		if mask.Has(i) {
			m.words[base+PAddr(i*WordBytes)] = vals[i]
		}
	}
}

// Footprint reports the number of distinct words ever written.
func (m *Memory) Footprint() int { return len(m.words) }

func checkAligned(a PAddr) {
	if a%WordBytes != 0 {
		panic(fmt.Sprintf("memdata: unaligned word address %#x", uint64(a)))
	}
}
