package memdata

import (
	"testing"
	"testing/quick"
)

func TestLineGeometry(t *testing.T) {
	if WordsPerLine != 16 {
		t.Fatalf("WordsPerLine = %d, want 16", WordsPerLine)
	}
	cases := []struct {
		a        PAddr
		line     PAddr
		wordIdx  int
		wordBase PAddr
	}{
		{0, 0, 0, 0},
		{4, 0, 1, 4},
		{63, 0, 15, 60},
		{64, 64, 0, 64},
		{0x1fc, 0x1c0, 15, 0x1fc},
	}
	for _, c := range cases {
		if got := LineOf(c.a); got != c.line {
			t.Errorf("LineOf(%#x) = %#x, want %#x", c.a, got, c.line)
		}
		if got := WordIndex(c.a); got != c.wordIdx {
			t.Errorf("WordIndex(%#x) = %d, want %d", c.a, got, c.wordIdx)
		}
		if got := WordOf(c.a); got != c.wordBase {
			t.Errorf("WordOf(%#x) = %#x, want %#x", c.a, got, c.wordBase)
		}
	}
}

func TestMaskOps(t *testing.T) {
	m := Bit(0) | Bit(15)
	if !m.Has(0) || !m.Has(15) || m.Has(7) {
		t.Fatalf("mask membership wrong: %016b", m)
	}
	if m.Count() != 2 {
		t.Fatalf("Count = %d, want 2", m.Count())
	}
	if MaskAll.Count() != WordsPerLine {
		t.Fatalf("MaskAll.Count = %d, want %d", MaskAll.Count(), WordsPerLine)
	}
}

func TestMemoryLoadStore(t *testing.T) {
	m := NewMemory()
	if v := m.LoadWord(0x100); v != 0 {
		t.Fatalf("unwritten word = %d, want 0", v)
	}
	m.StoreWord(0x100, 42)
	if v := m.LoadWord(0x100); v != 42 {
		t.Fatalf("LoadWord = %d, want 42", v)
	}
	if m.Footprint() != 1 {
		t.Fatalf("Footprint = %d, want 1", m.Footprint())
	}
}

func TestMemoryUnalignedPanics(t *testing.T) {
	m := NewMemory()
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned access did not panic")
		}
	}()
	m.LoadWord(0x101)
}

func TestLoadLineAndStoreMasked(t *testing.T) {
	m := NewMemory()
	var vals [WordsPerLine]uint32
	for i := range vals {
		vals[i] = uint32(100 + i)
	}
	m.StoreMasked(0x40, Bit(3)|Bit(7), vals)
	line := m.LoadLine(0x40)
	for i := range line {
		want := uint32(0)
		if i == 3 || i == 7 {
			want = uint32(100 + i)
		}
		if line[i] != want {
			t.Fatalf("line[%d] = %d, want %d", i, line[i], want)
		}
	}
}

// Property: StoreMasked writes exactly the masked words and nothing else.
func TestStoreMaskedProperty(t *testing.T) {
	f := func(mask WordMask, seedVals [WordsPerLine]uint32) bool {
		mask &= MaskAll
		m := NewMemory()
		// Pre-fill with sentinel values.
		var sentinel [WordsPerLine]uint32
		for i := range sentinel {
			sentinel[i] = 0xdead0000 + uint32(i)
		}
		m.StoreMasked(0x80, MaskAll, sentinel)
		m.StoreMasked(0x80, mask, seedVals)
		line := m.LoadLine(0x80)
		for i := 0; i < WordsPerLine; i++ {
			want := sentinel[i]
			if mask.Has(i) {
				want = seedVals[i]
			}
			if line[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: WordIndex and LineOf decompose any aligned address exactly.
func TestAddressDecompositionProperty(t *testing.T) {
	f := func(a PAddr) bool {
		a = WordOf(a)
		return LineOf(a)+PAddr(WordIndex(a)*WordBytes) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
