package tech

import (
	"math"
	"testing"
)

func TestNamesSortedAndLookupable(t *testing.T) {
	names := Names()
	if len(names) < 3 {
		t.Fatalf("expected at least 3 profiles, got %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
	for _, n := range names {
		p, err := Lookup(n)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", n, err)
		}
		if p.Name != n {
			t.Fatalf("profile %q has Name %q", n, p.Name)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("registered profile %q invalid: %v", n, err)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("unobtainium"); err == nil {
		t.Fatal("expected error for unknown profile")
	}
}

func TestSRAMIsIdentity(t *testing.T) {
	p, err := Lookup("sram")
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsIdentity() {
		t.Fatalf("sram profile must be the identity baseline: %+v", p)
	}
}

func TestNonDefaultProfilesAreNotIdentity(t *testing.T) {
	for _, n := range []string{"stt-mram", "edram"} {
		p, err := Lookup(n)
		if err != nil {
			t.Fatal(err)
		}
		if p.IsIdentity() {
			t.Fatalf("%s must differ from the SRAM baseline", n)
		}
	}
}

func TestSTTMRAMAsymmetry(t *testing.T) {
	p, _ := Lookup("stt-mram")
	if p.WriteLatDelta <= p.ReadLatDelta {
		t.Fatalf("STT-MRAM writes must be slower than reads: %+v", p)
	}
	if p.WriteEnergyScale <= p.ReadEnergyScale {
		t.Fatalf("STT-MRAM writes must cost more than reads: %+v", p)
	}
	sram, _ := Lookup("sram")
	if p.LeakageMWPerKB >= sram.LeakageMWPerKB {
		t.Fatalf("STT-MRAM leakage must be below SRAM: %v >= %v",
			p.LeakageMWPerKB, sram.LeakageMWPerKB)
	}
}

func TestValidateRejectsNegatives(t *testing.T) {
	cases := []Profile{
		{Name: "bad", ReadLatDelta: -1, ReadEnergyScale: 1, WriteEnergyScale: 1},
		{Name: "bad", WriteLatDelta: -2, ReadEnergyScale: 1, WriteEnergyScale: 1},
		{Name: "bad", ReadEnergyScale: -0.5, WriteEnergyScale: 1},
		{Name: "bad", ReadEnergyScale: 1, WriteEnergyScale: -1},
		{Name: "bad", ReadEnergyScale: 1, WriteEnergyScale: 1, LeakageMWPerKB: -1},
		{Name: "bad", ReadEnergyScale: 1, WriteEnergyScale: 1, RetentionUS: -1},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, p)
		}
	}
}

func TestStaticPJPerCycle(t *testing.T) {
	// 0.7 mW at 700 MHz is exactly 1 pJ/cycle.
	if got := StaticPJPerCycle(0.7); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("StaticPJPerCycle(0.7) = %v, want 1.0", got)
	}
	if got := StaticPJPerCycle(0); got != 0 {
		t.Fatalf("StaticPJPerCycle(0) = %v, want 0", got)
	}
}
