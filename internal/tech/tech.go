// Package tech defines memory-technology profiles for design-space
// exploration, in the spirit of HOPE's STT-RAM architecture exploration
// and FUSE's STT-MRAM-in-GPU study: a Profile captures how an on-chip
// memory structure built in a given technology differs from the SRAM
// baseline in access latency (asymmetric read vs. write), per-access
// energy, leakage, retention, and density.
//
// The SRAM profile is the identity: zero latency deltas and 1.0 energy
// scales leave the simulator's Table 3 baseline untouched. Non-SRAM
// profiles are illustrative composites of the values reported in the
// literature (see DESIGN.md section 16), chosen to exercise the
// qualitative tradeoffs — STT-MRAM's expensive writes vs. near-zero
// leakage and higher density, eDRAM's cheaper dynamic energy vs. refresh
// pressure — not to model a specific foundry node.
package tech

import (
	"fmt"
	"sort"
)

// Profile describes one memory technology relative to the SRAM baseline.
// Latency deltas are in core clock cycles and are added on top of the
// structure's baseline access latency; energy scales multiply the
// structure's baseline per-access energy.
type Profile struct {
	// Name is the profile's registry key (e.g. "sram", "stt-mram").
	Name string

	// ReadLatDelta and WriteLatDelta are extra cycles per read/write
	// access relative to the SRAM baseline. Never negative.
	ReadLatDelta  int
	WriteLatDelta int

	// ReadEnergyScale and WriteEnergyScale multiply the baseline
	// per-access read/write energy. 1.0 means SRAM-equivalent.
	ReadEnergyScale  float64
	WriteEnergyScale float64

	// LeakageMWPerKB is static power in milliwatts per kilobyte of
	// capacity. Reported separately from dynamic energy (Result's
	// StaticEnergyPJ) so the golden dynamic-energy totals stay
	// comparable with the paper's stacks.
	LeakageMWPerKB float64

	// RetentionUS is the cell retention time in microseconds; 0 means
	// effectively unbounded (SRAM, long-retention STT-MRAM). Carried in
	// the profile for reporting; retention-driven refresh traffic is a
	// recorded follow-up, not yet modeled (see ROADMAP.md).
	RetentionUS float64

	// DensityScale is bits per unit area relative to SRAM: capacity
	// achievable in the same footprint. Used by grid tooling to pick
	// iso-area capacity points; it does not change timing by itself.
	DensityScale float64
}

// profiles is the registry of named profiles. Values are illustrative
// mid-range points from the exploration literature:
//
//   - sram: the identity baseline (Table 3 / DefaultCosts as-is). The
//     leakage figure (~0.05 mW/KB) is in the range McPAT reports for
//     high-performance SRAM arrays at 32-45nm.
//   - stt-mram: reads near-SRAM (+1 cycle, slightly higher energy from
//     sense amps), writes much slower and costlier (+10 cycles, ~6x
//     energy), near-zero array leakage, ~3-4x density.
//   - edram: logic-process embedded DRAM; slightly slower than SRAM both
//     ways, lower dynamic energy, leakage between SRAM and STT-MRAM,
//     ~2x density, and tens-of-microseconds retention.
var profiles = map[string]Profile{
	"sram": {
		Name:             "sram",
		ReadEnergyScale:  1.0,
		WriteEnergyScale: 1.0,
		LeakageMWPerKB:   0.050,
		DensityScale:     1.0,
	},
	"stt-mram": {
		Name:             "stt-mram",
		ReadLatDelta:     1,
		WriteLatDelta:    10,
		ReadEnergyScale:  1.3,
		WriteEnergyScale: 6.0,
		LeakageMWPerKB:   0.002,
		RetentionUS:      0, // long-retention variant: effectively non-volatile
		DensityScale:     3.5,
	},
	"edram": {
		Name:             "edram",
		ReadLatDelta:     2,
		WriteLatDelta:    2,
		ReadEnergyScale:  0.7,
		WriteEnergyScale: 0.7,
		LeakageMWPerKB:   0.010,
		RetentionUS:      40,
		DensityScale:     2.0,
	},
}

// Lookup returns the named profile. The name must be one of Names.
func Lookup(name string) (Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("tech: unknown profile %q (have %v)", name, Names())
	}
	return p, nil
}

// Names returns the registered profile names in sorted order.
func Names() []string {
	out := make([]string, 0, len(profiles))
	for n := range profiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Validate checks a profile's parameters for physical plausibility.
func (p Profile) Validate() error {
	if p.ReadLatDelta < 0 || p.WriteLatDelta < 0 {
		return fmt.Errorf("tech: profile %q: latency deltas must be >= 0", p.Name)
	}
	if p.ReadEnergyScale < 0 || p.WriteEnergyScale < 0 {
		return fmt.Errorf("tech: profile %q: energy scales must be >= 0", p.Name)
	}
	if p.LeakageMWPerKB < 0 {
		return fmt.Errorf("tech: profile %q: leakage must be >= 0", p.Name)
	}
	if p.RetentionUS < 0 {
		return fmt.Errorf("tech: profile %q: retention must be >= 0", p.Name)
	}
	return nil
}

// IsIdentity reports whether the profile changes nothing relative to the
// SRAM baseline's timing and dynamic energy (leakage, retention and
// density may still differ: they do not affect golden metrics).
func (p Profile) IsIdentity() bool {
	return p.ReadLatDelta == 0 && p.WriteLatDelta == 0 &&
		p.ReadEnergyScale == 1.0 && p.WriteEnergyScale == 1.0
}

// ClockHz is the modeled core clock (Table 2: 700 MHz), used to convert
// leakage power into per-cycle static energy.
const ClockHz = 700e6

// StaticPJPerCycle converts a total leakage power in milliwatts into
// picojoules consumed per simulated cycle at ClockHz.
//
//	mW * 1e9 pJ/s / ClockHz cycles/s
func StaticPJPerCycle(mw float64) float64 {
	return mw * 1e9 / ClockHz
}
