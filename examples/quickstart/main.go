// Quickstart runs one of the paper's microbenchmarks on every memory
// organization and prints the headline metrics, normalized to the
// scratchpad baseline the way the paper's Figure 5 is.
package main

import (
	"fmt"
	"log"

	"stash"
)

func main() {
	const workload = "implicit"
	base, err := stash.RunWorkload(workload, stash.Scratch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on the microbenchmark machine (1 CU + 15 CPU cores)\n\n", workload)
	fmt.Printf("%-10s %10s %12s %14s %12s\n", "config", "cycles", "energy (nJ)", "instructions", "flit-hops")
	for _, org := range []stash.MemOrg{stash.Scratch, stash.ScratchGD, stash.Cache, stash.Stash} {
		res, err := stash.RunWorkload(workload, org)
		if err != nil {
			log.Fatal(err)
		}
		n := res.NormalizeTo(base)
		fmt.Printf("%-10s %10d %12.1f %14d %12d   (norm: time %.2f energy %.2f)\n",
			org, res.Cycles, res.EnergyPJ/1e3, res.GPUInstructions,
			res.TotalFlitHops(), n.Cycles, n.Energy)
	}
	fmt.Println("\nLower is better; Scratch = 1.00.")
}
