// Reuse demonstrates the stash's global visibility: data loaded by one
// kernel stays resident (registered) in the stash across the kernel
// boundary, so a second kernel touching the same mapping hits without
// any network traffic, where a scratchpad must reload everything and a
// cache has long evicted the (uncompacted) fields.
package main

import (
	"fmt"
	"log"

	"stash"
)

const (
	nElems   = 2048
	objBytes = 64 // one cache line per element: compaction matters
	blockDim = 128
	grid     = 8
	perBlock = nElems / grid
	kernels  = 3
)

func kernel(base stash.Addr) (*stash.Kernel, error) {
	a := stash.NewAsm()
	tid, sbase, gbase, i, off, v, cond := a.R(), a.R(), a.R(), a.R(), a.R(), a.R(), a.R()
	a.Spec(tid, stash.TID)
	a.MovI(sbase, 0)
	a.Spec(gbase, stash.CTAID)
	a.MulI(gbase, gbase, perBlock*objBytes)
	a.AddI(gbase, gbase, int64(base))
	a.AddMapReg(0, stash.MapParams{
		FieldBytes: 4, ObjectBytes: objBytes,
		RowElems: perBlock, NumRows: 1, Coherent: true,
	}, sbase, gbase)
	a.Barrier()
	a.For(i, perBlock/blockDim)
	a.MulI(off, i, blockDim)
	a.Add(off, off, tid)
	a.SetLtI(cond, off, perBlock)
	a.If(cond)
	a.LdStash(v, off, 0, 0)
	a.AddI(v, v, 1)
	a.StStash(off, 0, v, 0)
	a.EndIf()
	a.EndFor()
	return a.Kernel(blockDim, grid, perBlock)
}

func main() {
	sys, err := stash.NewSystem(stash.MicroConfig(stash.Stash))
	if err != nil {
		log.Fatal(err)
	}
	base := sys.Alloc(nElems*objBytes/4, func(i int) uint32 {
		if i%(objBytes/4) == 0 {
			return 1000
		}
		return 0
	})
	fmt.Println("Cross-kernel reuse through the stash (per-kernel network traffic):")
	prev := uint64(0)
	for k := 1; k <= kernels; k++ {
		kern, err := kernel(base)
		if err != nil {
			log.Fatal(err)
		}
		sys.RunKernel(kern)
		res := sys.Result()
		delta := res.TotalFlitHops() - prev
		prev = res.TotalFlitHops()
		fmt.Printf("  kernel %d: %6d flit-hops\n", k, delta)
	}
	sys.Flush()
	for i := 0; i < nElems; i++ {
		want := uint32(1000 + kernels)
		if got := sys.ReadWord(base + stash.Addr(i*objBytes)); got != want {
			log.Fatalf("field %d = %d, want %d", i, got, want)
		}
	}
	fmt.Println("\nKernels 2+ hit on data registered by kernel 1: the stash-map")
	fmt.Println("entries match (replication detection), so no misses, no reloads,")
	fmt.Println("and the dirty data is written back lazily only when evicted.")
}
