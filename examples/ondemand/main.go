// Ondemand demonstrates on-demand data movement: a kernel that touches
// only one element in eight, chosen by a runtime condition. The stash
// transfers only what the program reads; a DMA-enhanced scratchpad must
// conservatively move the whole mapped tile both ways.
package main

import (
	"fmt"
	"log"

	"stash"
)

const (
	nElems   = 4096
	blockDim = 128
	grid     = nElems / blockDim
	period   = 8
)

func shape() stash.MapParams {
	return stash.MapParams{
		FieldBytes: 4, ObjectBytes: 4, RowElems: blockDim, NumRows: 1, Coherent: true,
	}
}

// prologue computes the per-block bases and the thread's selector.
func prologue(a *stash.Asm, base, sel stash.Addr) (tid, sbase, gbase, cond stash.Reg) {
	tid, sbase, gbase = a.R(), a.R(), a.R()
	gtid, saddr := a.R(), a.R()
	cond = a.R()
	a.Spec(tid, stash.TID)
	a.MovI(sbase, 0)
	a.Spec(gbase, stash.CTAID)
	a.MulI(gbase, gbase, blockDim*4)
	a.AddI(gbase, gbase, int64(base))
	a.Spec(gtid, stash.CTAID)
	a.MulI(gtid, gtid, blockDim)
	a.Add(gtid, gtid, tid)
	a.MulI(saddr, gtid, 4)
	a.AddI(saddr, saddr, int64(sel))
	a.LdGlobal(cond, saddr, 0)
	return
}

func stashKernel(base, sel stash.Addr) (*stash.Kernel, error) {
	a := stash.NewAsm()
	tid, sbase, gbase, cond := prologue(a, base, sel)
	a.AddMapReg(0, shape(), sbase, gbase)
	a.Barrier()
	v := a.R()
	a.If(cond)
	a.LdStash(v, tid, 0, 0) // misses only for selected elements
	a.AddI(v, v, 7)
	a.StStash(tid, 0, v, 0)
	a.EndIf()
	return a.Kernel(blockDim, grid, blockDim)
}

func dmaKernel(base, sel stash.Addr) (*stash.Kernel, error) {
	a := stash.NewAsm()
	tid, sbase, gbase, cond := prologue(a, base, sel)
	a.DMALoad(shape(), sbase, gbase) // must move the whole tile in...
	a.Barrier()
	v := a.R()
	a.If(cond)
	a.LdShared(v, tid, 0)
	a.AddI(v, v, 7)
	a.StShared(tid, 0, v)
	a.EndIf()
	a.Barrier()
	a.DMAStore(shape(), sbase, gbase) // ...and the whole tile back out.
	return a.Kernel(blockDim, grid, blockDim)
}

func run(org stash.MemOrg, mk func(base, sel stash.Addr) (*stash.Kernel, error)) stash.Result {
	sys, err := stash.NewSystem(stash.MicroConfig(org))
	if err != nil {
		log.Fatal(err)
	}
	base := sys.Alloc(nElems, func(i int) uint32 { return uint32(i) })
	sel := sys.Alloc(nElems, func(i int) uint32 {
		if i%period == 0 {
			return 1
		}
		return 0
	})
	k, err := mk(base, sel)
	if err != nil {
		log.Fatal(err)
	}
	sys.RunKernel(k)
	res := sys.Result()
	sys.Flush()
	for i := 0; i < nElems; i++ {
		want := uint32(i)
		if i%period == 0 {
			want += 7
		}
		if got := sys.ReadWord(base + stash.Addr(4*i)); got != want {
			log.Fatalf("%v: A[%d] = %d, want %d", org, i, got, want)
		}
	}
	return res
}

func main() {
	dma := run(stash.ScratchGD, dmaKernel)
	st := run(stash.Stash, stashKernel)
	fmt.Printf("On-demand access (1 element in %d touched)\n\n", period)
	fmt.Printf("%-24s %14s %12s\n", "", "scratchpad+DMA", "stash")
	fmt.Printf("%-24s %14d %12d\n", "network flit-hops", dma.TotalFlitHops(), st.TotalFlitHops())
	fmt.Printf("%-24s %14.1f %12.1f\n", "dynamic energy (nJ)", dma.EnergyPJ/1e3, st.EnergyPJ/1e3)
	fmt.Printf("%-24s %14d %12d\n", "cycles", dma.Cycles, st.Cycles)
	fmt.Printf("\nThe DMA engine transfers all %d words in and out; the stash\nmoves only the ~%d words the kernel touches.\n",
		nElems, nElems/period)
}
