// Aosfield reproduces the paper's Figure 1 side by side: the same
// computation — read one field of each element of an array of
// structures, transform it, write it back — written once against a
// scratchpad (explicit copy loops through the L1 and registers, Figure
// 1a) and once against the stash (AddMap plus direct access, implicit
// data movement, Figure 1b). It prints the dynamic instruction count,
// energy, and traffic of both.
package main

import (
	"fmt"
	"log"

	"stash"
)

const (
	nElems   = 2048
	objBytes = 32 // 8-word objects; fieldX is word 0
	blockDim = 128
	grid     = nElems / blockDim
)

// scratchKernel is func_scratch of Figure 1a.
func scratchKernel(base stash.Addr) (*stash.Kernel, error) {
	a := stash.NewAsm()
	tid, gtid, addr, v := a.R(), a.R(), a.R(), a.R()
	a.Spec(tid, stash.TID)
	a.Spec(gtid, stash.CTAID)
	a.MulI(gtid, gtid, blockDim)
	a.Add(gtid, gtid, tid)
	a.MulI(addr, gtid, objBytes)
	a.AddI(addr, addr, int64(base))
	// Explicit global load and scratchpad store.
	a.LdGlobal(v, addr, 0)
	a.StShared(tid, 0, v)
	a.Barrier()
	// Compute with the scratchpad copy.
	a.LdShared(v, tid, 0)
	a.Flops(4)
	a.MulI(v, v, 3)
	a.AddI(v, v, 1)
	a.StShared(tid, 0, v)
	a.Barrier()
	// Explicit scratchpad load and global store.
	a.LdShared(v, tid, 0)
	a.StGlobal(addr, 0, v)
	return a.Kernel(blockDim, grid, 128)
}

// stashKernel is func_stash of Figure 1b.
func stashKernel(base stash.Addr) (*stash.Kernel, error) {
	a := stash.NewAsm()
	tid, sbase, gbase, v := a.R(), a.R(), a.R(), a.R()
	a.Spec(tid, stash.TID)
	a.MovI(sbase, 0)
	a.Spec(gbase, stash.CTAID)
	a.MulI(gbase, gbase, blockDim*objBytes)
	a.AddI(gbase, gbase, int64(base))
	// AddMap(stashBase, globalBase, fieldSize, objectSize, rowSize,
	//        strideSize, numStrides, isCoherent)
	a.AddMapReg(0, stash.MapParams{
		FieldBytes:  4,
		ObjectBytes: objBytes,
		RowElems:    blockDim,
		NumRows:     1,
		Coherent:    true,
	}, sbase, gbase)
	a.Barrier()
	// Direct stash access; the first load implicitly fetches the field,
	// the store is lazily written back.
	a.LdStash(v, tid, 0, 0)
	a.Flops(4)
	a.MulI(v, v, 3)
	a.AddI(v, v, 1)
	a.StStash(tid, 0, v, 0)
	return a.Kernel(blockDim, grid, 128)
}

func run(org stash.MemOrg, mk func(stash.Addr) (*stash.Kernel, error)) stash.Result {
	sys, err := stash.NewSystem(stash.MicroConfig(org))
	if err != nil {
		log.Fatal(err)
	}
	base := sys.Alloc(nElems*objBytes/4, func(i int) uint32 {
		if i%(objBytes/4) == 0 {
			return uint32(i / (objBytes / 4))
		}
		return 0
	})
	k, err := mk(base)
	if err != nil {
		log.Fatal(err)
	}
	sys.RunKernel(k)
	res := sys.Result()
	// Verify both versions computed fieldX = 3*i + 1.
	sys.Flush()
	for i := 0; i < nElems; i++ {
		want := uint32(3*i + 1)
		if got := sys.ReadWord(base + stash.Addr(i*objBytes)); got != want {
			log.Fatalf("%v: field %d = %d, want %d", org, i, got, want)
		}
	}
	return res
}

func main() {
	scratch := run(stash.Scratch, scratchKernel)
	st := run(stash.Stash, stashKernel)
	fmt.Println("Figure 1: one AoS field, updated by the GPU")
	fmt.Printf("%-28s %12s %12s\n", "", "scratchpad", "stash")
	fmt.Printf("%-28s %12d %12d\n", "GPU instructions", scratch.GPUInstructions, st.GPUInstructions)
	fmt.Printf("%-28s %12d %12d\n", "cycles", scratch.Cycles, st.Cycles)
	fmt.Printf("%-28s %12.1f %12.1f\n", "dynamic energy (nJ)", scratch.EnergyPJ/1e3, st.EnergyPJ/1e3)
	fmt.Printf("%-28s %12d %12d\n", "network flit-hops", scratch.TotalFlitHops(), st.TotalFlitHops())
	fmt.Printf("\nThe stash removes the explicit copy instructions (%.0f%% fewer instructions)\n",
		100*(1-float64(st.GPUInstructions)/float64(scratch.GPUInstructions)))
}
