package stash

import (
	"context"
	"errors"
	"fmt"
)

// FailureKind classifies how a simulation cell failed, mirroring the
// checker's typed panics (see DESIGN.md §10).
type FailureKind string

// Failure kinds, from most to least specific diagnosis.
const (
	// FailHang: the watchdog saw no protocol progress for the cycle
	// budget while work was outstanding (a livelock).
	FailHang FailureKind = "hang"
	// FailDeadlock: the event queue drained with work still pending (a
	// lost wakeup), caught at a kernel or phase boundary.
	FailDeadlock FailureKind = "deadlock"
	// FailInvariant: a structural invariant of the coherence machinery
	// was violated.
	FailInvariant FailureKind = "invariant"
	// FailPanic: the simulator panicked for any other reason.
	FailPanic FailureKind = "panic"
)

// CellError is a structured simulation failure: instead of crashing the
// process, a wedged or inconsistent cell surfaces as this error with a
// machine-state diagnostic dump attached. It is the error type behind
// the hang/deadlock/invariant/panic cell statuses.
type CellError struct {
	// Workload and Org identify the failing cell.
	Workload string
	Org      MemOrg
	// Kind classifies the failure.
	Kind FailureKind
	// Msg is the one-line failure description.
	Msg string
	// Diagnostic is the full machine-state dump at the point of failure
	// (engine clock, per-component MSHRs, buffers, pools), busy
	// components first. See "Debugging a wedged sweep cell" in README.md.
	Diagnostic string
	// Stack is the Go stack trace, only for Kind == FailPanic.
	Stack string
}

func (e *CellError) Error() string {
	return fmt.Sprintf("stash: %s on %v: %s: %s", e.Workload, e.Org, e.Kind, e.Msg)
}

// ErrCellTimeout is the cancellation cause Sweep installs when a cell
// exceeds SweepOptions.CellTimeout; errors.Is(cellErr, ErrCellTimeout)
// distinguishes a per-cell time budget from the caller canceling the
// whole sweep.
var ErrCellTimeout = errors.New("stash: cell exceeded its time budget")

// CellStatus is the per-cell disposition emitted in sweep JSON and
// derived from a SweepResult by its Status method.
type CellStatus string

// Cell statuses.
const (
	// StatusOK: the cell simulated and verified.
	StatusOK CellStatus = "ok"
	// StatusError: a plain failure — invalid config, unknown workload,
	// or failed functional verification.
	StatusError CellStatus = "error"
	// StatusHang, StatusDeadlock, StatusInvariant, StatusPanic mirror
	// the CellError failure kinds.
	StatusHang      CellStatus = "hang"
	StatusDeadlock  CellStatus = "deadlock"
	StatusInvariant CellStatus = "invariant"
	StatusPanic     CellStatus = "panic"
	// StatusTimeout: the cell exceeded SweepOptions.CellTimeout.
	StatusTimeout CellStatus = "timeout"
	// StatusCanceled: the sweep's context was canceled mid-cell.
	StatusCanceled CellStatus = "canceled"
	// StatusNotStarted: the sweep stopped (fail-fast or cancellation)
	// before the cell began.
	StatusNotStarted CellStatus = "not_started"
)

// statusOf classifies err as emitted for a cell that ran for wall time.
func statusOf(err error, started bool) CellStatus {
	switch {
	case err == nil:
		return StatusOK
	// A timed-out cell also satisfies errors.Is(err,
	// context.DeadlineExceeded), so the specific cause wins.
	case errors.Is(err, ErrCellTimeout):
		return StatusTimeout
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		if !started {
			return StatusNotStarted
		}
		return StatusCanceled
	}
	var ce *CellError
	if errors.As(err, &ce) {
		switch ce.Kind {
		case FailHang:
			return StatusHang
		case FailDeadlock:
			return StatusDeadlock
		case FailInvariant:
			return StatusInvariant
		case FailPanic:
			return StatusPanic
		}
	}
	return StatusError
}
