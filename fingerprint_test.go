package stash

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"reflect"
	"strings"
	"testing"
)

// TestFingerprintPinned pins the exact fingerprint of one well-known
// cell. Any change to the canonical encoding — however accidental —
// fails here and forces a deliberate fingerprintVersion bump, which is
// what keeps persisted cell caches from silently serving stale results.
func TestFingerprintPinned(t *testing.T) {
	fp, err := (RunSpec{Workload: "implicit", Config: MicroConfig(Stash)}).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	const want = "7a21751cb410811a96c8981950098a196f1886904a3b813a5a7677e1d18d43d0"
	if fp != want {
		t.Errorf("fingerprint of implicit/MicroConfig(Stash) changed:\n got %s\nwant %s\nIf the encoding change is intentional, bump fingerprintVersion and repin.", fp, want)
	}
	// The v1 pin for the same cell. v2 retiring every v1 cache entry is
	// only true if the version string actually moves the hash; guard
	// against a refactor that stops folding it in.
	const v1 = "33ceb7bd5ecc5aa7462f7c74c458b9dc975c51e5d7625da8f12a3a9a01a4cfbf"
	if fp == v1 {
		t.Error("v2 fingerprint collided with the retired v1 pin; fingerprintVersion is no longer key material")
	}
}

// TestFingerprintVersionIsKeyMaterial pins that the version constant
// participates in the hash: hand-hashing the same cell under a
// different version label must diverge from Fingerprint's output.
func TestFingerprintVersionIsKeyMaterial(t *testing.T) {
	spec := RunSpec{Workload: "implicit", Config: MicroConfig(Stash)}
	fp, err := spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := canonicalJSON(spec.Config)
	if err != nil {
		t.Fatal(err)
	}
	alt := sha256.New()
	io.WriteString(alt, "stash-cell-v1")
	alt.Write([]byte{0})
	io.WriteString(alt, spec.Workload)
	alt.Write([]byte{0})
	alt.Write(cfg)
	if fp == hex.EncodeToString(alt.Sum(nil)) {
		t.Error("fingerprint matches a v1-labelled hash of the same cell; version bump would not invalidate old caches")
	}
}

// TestFingerprintStable re-derives the same fingerprint many times
// (exercising Go's randomized map iteration inside the canonical
// encoder) and from separately constructed equal specs.
func TestFingerprintStable(t *testing.T) {
	mk := func() RunSpec {
		cfg := AppConfig(StashG)
		cfg.ChunkWords = 4
		cfg.Faults = &FaultConfig{Seed: 1<<63 + 12345, NoCJitterMax: 7}
		cfg.Trace = &TraceConfig{BucketCycles: 2048}
		return RunSpec{Workload: "lud", Config: cfg}
	}
	want, err := mk().Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		got, err := mk().Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("iteration %d: fingerprint not stable: %s vs %s", i, got, want)
		}
	}
}

// TestFingerprintFieldOrderIrrelevant encodes the same logical object
// through two struct types whose fields are declared in opposite
// orders; the canonical form must be identical. This pins the property
// that reordering Config's declaration can never invalidate a cache.
func TestFingerprintFieldOrderIrrelevant(t *testing.T) {
	type ab struct {
		A int    `json:"a"`
		B string `json:"b"`
	}
	type ba struct {
		B string `json:"b"`
		A int    `json:"a"`
	}
	x, err := canonicalJSON(ab{A: 3, B: "v"})
	if err != nil {
		t.Fatal(err)
	}
	y, err := canonicalJSON(ba{B: "v", A: 3})
	if err != nil {
		t.Fatal(err)
	}
	if string(x) != string(y) {
		t.Errorf("canonical encodings differ across field order:\n%s\n%s", x, y)
	}
}

// TestFingerprint64BitExact pins that large uint64 values (fault seeds)
// survive canonicalization exactly rather than being rounded through
// float64 — two seeds that differ only below float64 precision must
// fingerprint differently.
func TestFingerprint64BitExact(t *testing.T) {
	spec := func(seed uint64) RunSpec {
		cfg := MicroConfig(Stash)
		cfg.Faults = &FaultConfig{Seed: seed, NoCJitterMax: 1}
		return RunSpec{Workload: "reuse", Config: cfg}
	}
	a, err := spec(1 << 60).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec(1<<60 + 1).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("seeds differing by 1 ulp-below-float64-precision collided")
	}
}

// TestFingerprintCoversEveryField mutates each semantic Config field
// (and the workload) one at a time and requires the fingerprint to
// move. The reflection count forces this table to grow whenever a
// field is added to Config, so new knobs can't silently alias cells.
func TestFingerprintCoversEveryField(t *testing.T) {
	base := RunSpec{Workload: "implicit", Config: MicroConfig(Stash)}
	baseFP, err := base.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}

	mutations := map[string]func(*Config){
		"Org":                func(c *Config) { c.Org = Cache },
		"GPUs":               func(c *Config) { c.GPUs++ },
		"CPUs":               func(c *Config) { c.CPUs-- },
		"DisableReplication": func(c *Config) { c.DisableReplication = true },
		"EagerWriteback":     func(c *Config) { c.EagerWriteback = true },
		"ChunkWords":         func(c *Config) { c.ChunkWords = 4 },
		"CheckInvariants":    func(c *Config) { c.CheckInvariants = true },
		"WatchdogBudget":     func(c *Config) { c.WatchdogBudget = 1 << 20 },
		"Faults":             func(c *Config) { c.Faults = &FaultConfig{Seed: 9} },
		"Trace":              func(c *Config) { c.Trace = &TraceConfig{BucketCycles: 64} },
		"StashTech":          func(c *Config) { c.StashTech = &TechSpec{Profile: "stt-mram"} },
		"L1Tech":             func(c *Config) { c.L1Tech = &TechSpec{Profile: "edram"} },
		"LLCTech":            func(c *Config) { c.LLCTech = &TechSpec{Profile: "stt-mram"} },
	}
	ct := reflect.TypeOf(Config{})
	if got, want := len(mutations), ct.NumField(); got != want {
		t.Fatalf("mutation table covers %d fields but Config has %d: add the new field here and decide whether it is semantic", got, want)
	}
	for i := 0; i < ct.NumField(); i++ {
		if _, ok := mutations[ct.Field(i).Name]; !ok {
			t.Fatalf("Config field %s has no fingerprint mutation entry", ct.Field(i).Name)
		}
	}
	for name, mutate := range mutations {
		spec := base
		mutate(&spec.Config)
		fp, err := spec.Fingerprint()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fp == baseFP {
			t.Errorf("mutating Config.%s did not change the fingerprint", name)
		}
	}

	other := base
	other.Workload = "pollution"
	fp, err := other.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp == baseFP {
		t.Error("changing the workload did not change the fingerprint")
	}
}

// TestFingerprintNestedFields spot-checks that fields inside the
// nested Faults/Trace structs move the hash too.
func TestFingerprintNestedFields(t *testing.T) {
	mk := func(edit func(*Config)) string {
		cfg := MicroConfig(Stash)
		cfg.Faults = &FaultConfig{Seed: 1, BankStalls: []BankStall{{Bank: 3, From: 100, For: 10}}}
		cfg.Trace = &TraceConfig{BucketCycles: 1024}
		if edit != nil {
			edit(&cfg)
		}
		fp, err := (RunSpec{Workload: "nw", Config: cfg}).Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		return fp
	}
	base := mk(nil)
	for name, edit := range map[string]func(*Config){
		"Faults.Seed":            func(c *Config) { c.Faults.Seed = 2 },
		"Faults.BankStalls.Bank": func(c *Config) { c.Faults.BankStalls[0].Bank = 4 },
		"Faults.BankStalls.For":  func(c *Config) { c.Faults.BankStalls[0].For = 0 },
		"Trace.BucketCycles":     func(c *Config) { c.Trace.BucketCycles = 512 },
	} {
		if mk(edit) == base {
			t.Errorf("mutating %s did not change the fingerprint", name)
		}
	}
}

func TestFingerprintInvalidOrg(t *testing.T) {
	_, err := (RunSpec{Workload: "implicit", Config: Config{Org: MemOrg(99), GPUs: 1}}).Fingerprint()
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("want a fingerprint encoding error for an invalid MemOrg, got %v", err)
	}
}
