package stash

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"strings"
	"testing"
)

// The golden-metrics regression test pins every simulated metric of
// every (workload, organization) pair to exact values captured before
// the zero-allocation hot-path work. Performance optimizations must
// never change simulated results: cycles, energy, instruction counts
// and network traffic are bit-identical across refactors, and any
// intentional model change must regenerate the table with
//
//	go test -run TestGoldenMetrics -update-golden
//
// and justify the diff in review.

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden.json from the current simulator")

const goldenPath = "testdata/golden.json"

// goldenEntry is one (workload, org) cell of the golden table. EnergyPJ
// round-trips exactly through JSON: encoding/json emits the shortest
// float representation that parses back to the identical float64.
type goldenEntry struct {
	Workload     string            `json:"workload"`
	Org          string            `json:"org"`
	Cycles       uint64            `json:"cycles"`
	EnergyPJ     float64           `json:"energy_pj"`
	Instructions uint64            `json:"instructions"`
	FlitHops     map[string]uint64 `json:"flit_hops"`
}

func goldenGrid() []RunSpec {
	return Grid(Workloads(), Orgs())
}

func readGolden(t *testing.T) []goldenEntry {
	t.Helper()
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden table (regenerate with -update-golden): %v", err)
	}
	var entries []goldenEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}
	return entries
}

func writeGolden(t *testing.T) {
	t.Helper()
	specs := goldenGrid()
	results, err := Sweep(context.Background(), specs, SweepOptions{Workers: runtime.GOMAXPROCS(0)})
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]goldenEntry, 0, len(results))
	for _, r := range results {
		entries = append(entries, goldenEntry{
			Workload:     r.Spec.Workload,
			Org:          r.Spec.Config.Org.String(),
			Cycles:       r.Result.Cycles,
			EnergyPJ:     r.Result.EnergyPJ,
			Instructions: r.Result.GPUInstructions,
			FlitHops:     r.Result.FlitHops,
		})
	}
	data, err := json.MarshalIndent(entries, "", "\t")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d golden entries to %s", len(entries), goldenPath)
}

// TestGoldenChecksNeutral replays one representative cell with the
// full hardening instrumentation armed — invariant sweeps plus the
// watchdog — and requires bit-identical metrics to the golden table.
// The checker is a host-side probe that never schedules events or
// advances the clock, so "checks on" must be invisible to every
// simulated number.
func TestGoldenChecksNeutral(t *testing.T) {
	for _, e := range readGolden(t) {
		if e.Workload != "implicit" || e.Org != "Stash" {
			continue
		}
		cfg := MicroConfig(Stash)
		cfg.CheckInvariants = true
		cfg.WatchdogBudget = 1 << 24
		res, err := RunWorkloadCfg(e.Workload, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles != e.Cycles {
			t.Errorf("Cycles = %d, golden %d", res.Cycles, e.Cycles)
		}
		if res.EnergyPJ != e.EnergyPJ {
			t.Errorf("EnergyPJ = %v, golden %v", res.EnergyPJ, e.EnergyPJ)
		}
		if res.GPUInstructions != e.Instructions {
			t.Errorf("Instructions = %d, golden %d", res.GPUInstructions, e.Instructions)
		}
		for class, want := range e.FlitHops {
			if got := res.FlitHops[class]; got != want {
				t.Errorf("FlitHops[%s] = %d, golden %d", class, got, want)
			}
		}
		return
	}
	t.Fatal("golden table has no implicit/Stash entry")
}

// TestGoldenTraceNeutral replays a representative cell with event
// tracing armed and requires bit-identical metrics to the golden
// table: trace sinks are host-side observers that never schedule
// events, advance the clock, or charge energy, so "tracing on" must be
// invisible to every simulated number — while still producing a
// populated timeline (component tracks, phases, and the headline
// time-series).
func TestGoldenTraceNeutral(t *testing.T) {
	for _, e := range readGolden(t) {
		if e.Workload != "implicit" || e.Org != "Stash" {
			continue
		}
		cfg := MicroConfig(Stash)
		cfg.Trace = &TraceConfig{}
		res, err := RunWorkloadCfg(e.Workload, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles != e.Cycles {
			t.Errorf("Cycles = %d, golden %d", res.Cycles, e.Cycles)
		}
		if res.EnergyPJ != e.EnergyPJ {
			t.Errorf("EnergyPJ = %v, golden %v", res.EnergyPJ, e.EnergyPJ)
		}
		if res.GPUInstructions != e.Instructions {
			t.Errorf("Instructions = %d, golden %d", res.GPUInstructions, e.Instructions)
		}
		for class, want := range e.FlitHops {
			if got := res.FlitHops[class]; got != want {
				t.Errorf("FlitHops[%s] = %d, golden %d", class, got, want)
			}
		}

		tl := res.Timeline
		if tl == nil {
			t.Fatal("traced run returned no Timeline")
		}
		if tl.NumEvents() == 0 {
			t.Error("timeline holds no events")
		}
		if n := len(tl.Tracks()); n < 6 {
			t.Errorf("timeline has %d component tracks, want at least 6: %v", n, tl.Tracks())
		}
		if len(tl.Phases()) == 0 {
			t.Error("timeline has no phase annotations")
		}
		sum := func(vals []uint64) uint64 {
			var s uint64
			for _, v := range vals {
				s += v
			}
			return s
		}
		if vals, ok := tl.Series("stash.gpu0.writebacks"); !ok {
			t.Errorf("timeline is missing series stash.gpu0.writebacks (have %v)", tl.SeriesNames())
		} else if sum(vals) == 0 {
			t.Error("series stash.gpu0.writebacks is all zero")
		}
		if _, ok := tl.Series("l1.gpu0.misses"); !ok {
			t.Errorf("timeline is missing series l1.gpu0.misses (have %v)", tl.SeriesNames())
		}
		// On this cell the stash absorbs the GPU's misses; the workload's
		// L1 miss traffic is on the producing CPU cores' L1s.
		var l1Misses, linkFlits uint64
		for _, name := range tl.SeriesNames() {
			vals, _ := tl.Series(name)
			switch {
			case strings.HasPrefix(name, "l1.") && strings.HasSuffix(name, ".misses"):
				l1Misses += sum(vals)
			case strings.HasPrefix(name, "noc.link."):
				linkFlits += sum(vals)
			}
		}
		if l1Misses == 0 {
			t.Error("L1 miss series recorded no misses on any L1")
		}
		if linkFlits == 0 {
			t.Error("per-link NoC flit series recorded no traffic")
		}
		return
	}
	t.Fatal("golden table has no implicit/Stash entry")
}

// TestGoldenMetrics replays the full grid and requires exact equality
// with the committed table. In -short mode only the microbenchmark
// machine runs (the application cells are the long ones).
func TestGoldenMetrics(t *testing.T) {
	if *updateGolden {
		writeGolden(t)
		return
	}
	entries := readGolden(t)
	if want := len(goldenGrid()); len(entries) != want {
		t.Fatalf("golden table has %d entries, grid has %d cells; regenerate with -update-golden", len(entries), want)
	}
	for _, e := range entries {
		e := e
		if testing.Short() && !IsMicrobenchmark(e.Workload) {
			continue
		}
		t.Run(e.Workload+"/"+e.Org, func(t *testing.T) {
			t.Parallel()
			org, err := ParseMemOrg(e.Org)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunWorkload(e.Workload, org)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cycles != e.Cycles {
				t.Errorf("Cycles = %d, golden %d", res.Cycles, e.Cycles)
			}
			if res.EnergyPJ != e.EnergyPJ {
				t.Errorf("EnergyPJ = %v, golden %v", res.EnergyPJ, e.EnergyPJ)
			}
			if res.GPUInstructions != e.Instructions {
				t.Errorf("Instructions = %d, golden %d", res.GPUInstructions, e.Instructions)
			}
			for class, want := range e.FlitHops {
				if got := res.FlitHops[class]; got != want {
					t.Errorf("FlitHops[%s] = %d, golden %d", class, got, want)
				}
			}
		})
	}
}
