// Package stash is a from-scratch reproduction of the memory system
// proposed in "Stash: Have Your Scratchpad and Cache It Too"
// (Komuravelli et al., ISCA 2015) as an executable Go library.
//
// The stash is an SRAM organization for heterogeneous CPU-GPU systems
// that is directly addressed and compactly stored like a scratchpad —
// no tag or TLB access on hits, no conflict misses, only useful words
// resident — while remaining globally addressable and visible like a
// cache: data moves implicitly and on demand, writebacks are lazy, and
// values are kept coherent across compute units, enabling reuse across
// kernels.
//
// The package front-ends a full simulated machine (see DESIGN.md): GPU
// compute units executing a mini SIMT ISA, scratchpads, stashes, a DMA
// engine, DeNovo word-granularity coherence, a banked shared LLC, a 4x4
// mesh NoC, virtual memory, and a GPUWattch-style energy model. Every
// table and figure of the paper's evaluation can be regenerated through
// the benchmarks in bench_test.go and cmd/paperfigs.
//
// Quick start:
//
//	res, err := stash.RunWorkload("implicit", stash.Stash)
//	// res.Cycles, res.EnergyPJ, res.FlitHops, ...
//
// Custom kernels are written against System, Asm and MapParams; see
// examples/ for complete programs.
package stash

import (
	"fmt"

	"stash/internal/check"
	"stash/internal/core"
	"stash/internal/faults"
	"stash/internal/gpu"
	"stash/internal/isa"
	"stash/internal/memdata"
	"stash/internal/sim"
	"stash/internal/system"
)

// MemOrg selects one of the paper's six memory organizations
// (Section 5.3).
type MemOrg int

// Memory organizations, in the paper's order.
const (
	// Scratch: 16 KB scratchpad + 32 KB L1; explicit copies.
	Scratch MemOrg = iota
	// ScratchG: Scratch with global accesses converted to scratchpad.
	ScratchG
	// ScratchGD: ScratchG with a D2MA-style DMA engine.
	ScratchGD
	// Cache: 32 KB L1 only.
	Cache
	// Stash: 16 KB stash + 32 KB L1 (the paper's contribution).
	Stash
	// StashG: Stash with global accesses converted to stash accesses.
	StashG
)

// Orgs lists all six memory organizations in the paper's order.
func Orgs() []MemOrg { return []MemOrg{Scratch, ScratchG, ScratchGD, Cache, Stash, StashG} }

var memOrgNames = [...]string{"Scratch", "ScratchG", "ScratchGD", "Cache", "Stash", "StashG"}

// Valid reports whether o is one of the six paper organizations.
func (o MemOrg) Valid() bool { return o >= Scratch && o <= StashG }

// String returns the configuration name as used in the paper's figures,
// or "MemOrg(n)" for values outside the six organizations.
func (o MemOrg) String() string {
	if !o.Valid() {
		return fmt.Sprintf("MemOrg(%d)", int(o))
	}
	return memOrgNames[o]
}

// ParseMemOrg returns the memory organization with the given figure
// name (e.g. "ScratchGD", "Stash").
func ParseMemOrg(name string) (MemOrg, error) {
	for i, n := range memOrgNames {
		if n == name {
			return MemOrg(i), nil
		}
	}
	return 0, fmt.Errorf("stash: unknown memory organization %q (want one of %v)", name, Orgs())
}

// MarshalText encodes o as its figure name, making MemOrg usable as a
// JSON value or map key.
func (o MemOrg) MarshalText() ([]byte, error) {
	if !o.Valid() {
		return nil, fmt.Errorf("stash: cannot marshal invalid MemOrg %d", int(o))
	}
	return []byte(o.String()), nil
}

// UnmarshalText decodes a figure name produced by MarshalText.
func (o *MemOrg) UnmarshalText(b []byte) error {
	v, err := ParseMemOrg(string(b))
	if err != nil {
		return err
	}
	*o = v
	return nil
}

// internal maps o onto the simulator's organization constant. Every
// public entry point validates o (Config.Validate) before reaching this
// point, so the default branch is unreachable from outside the package.
func (o MemOrg) internal() system.MemOrg {
	switch o {
	case Scratch:
		return system.Scratch
	case ScratchG:
		return system.ScratchG
	case ScratchGD:
		return system.ScratchGD
	case Cache:
		return system.CacheOnly
	case Stash:
		return system.StashOrg
	case StashG:
		return system.StashG
	}
	panic(fmt.Sprintf("stash: invalid MemOrg %d", int(o)))
}

// Config describes a machine to simulate. The zero value is not valid
// (Validate rejects it); start from MicroConfig or AppConfig.
type Config struct {
	// Org selects the memory organization.
	Org MemOrg `json:"org"`
	// GPUs and CPUs place compute units and CPU cores on the 16-node
	// mesh (GPUs first). GPUs must be at least 1 and GPUs+CPUs must not
	// exceed 16.
	GPUs int `json:"gpus"`
	CPUs int `json:"cpus"`
	// DisableReplication turns off the data-replication optimization of
	// paper Section 4.5 (for ablation).
	DisableReplication bool `json:"disable_replication,omitempty"`
	// EagerWriteback makes the stash write dirty data back at every
	// kernel boundary, scratchpad-style (for ablation).
	EagerWriteback bool `json:"eager_writeback,omitempty"`
	// ChunkWords overrides the lazy-writeback chunk granularity in words
	// (for ablation). Zero selects the paper's default of 16 words
	// (64 B, Section 4.2); explicit values must be powers of two between
	// 1 and 16, so kernels' 64 B-aligned stash allocations stay
	// chunk-aligned at the finer granularity.
	ChunkWords int `json:"chunk_words,omitempty"`
	// CheckInvariants enables periodic and boundary structural checks of
	// the coherence machinery (single owner per LLC line, MSHR and pool
	// conservation, stash map consistency). Violations surface as a
	// *CellError of kind FailInvariant. Checks never perturb simulated
	// metrics; they cost host time only.
	CheckInvariants bool `json:"check_invariants,omitempty"`
	// WatchdogBudget arms the deadlock/livelock watchdog: if no protocol
	// transaction completes for this many simulated cycles while work is
	// outstanding, the run fails with a *CellError of kind FailHang
	// instead of spinning forever. Zero disables the watchdog.
	WatchdogBudget uint64 `json:"watchdog_budget,omitempty"`
	// Faults, when non-nil, injects a deterministic timing-fault
	// schedule (for robustness testing; see FaultConfig).
	Faults *FaultConfig `json:"faults,omitempty"`
	// Trace, when non-nil, records a cycle-accurate event timeline and
	// per-bucket time-series, attached to Result.Timeline. Tracing is
	// timing-neutral: metrics are bit-identical with it on or off.
	Trace *TraceConfig `json:"trace,omitempty"`
	// StashTech, L1Tech, and LLCTech select memory technologies for the
	// stash, the GPU L1 caches, and the LLC banks (see TechSpec). Nil
	// means the SRAM baseline and is bit-identical to the pre-technology
	// timing model; non-nil specs are a versioned timing-model extension
	// pinned by their own golden vectors. An axis naming a structure the
	// organization lacks (e.g. StashTech under Cache) is accepted and has
	// no metric effect.
	StashTech *TechSpec `json:"stash_tech,omitempty"`
	L1Tech    *TechSpec `json:"l1_tech,omitempty"`
	LLCTech   *TechSpec `json:"llc_tech,omitempty"`
}

// FaultConfig is a seeded, deterministic timing-fault schedule. Faults
// perturb when packets and transfers happen, never what they carry, so
// a correct protocol must produce identical final values under any
// schedule — only cycle counts move. A dead bank (BankStall with
// For == 0) drops traffic outright, which a hardened run converts into
// a structured hang/deadlock failure rather than an infinite loop.
type FaultConfig struct {
	// Seed selects the deterministic perturbation stream; equal seeds
	// reproduce bit-equal runs.
	Seed uint64 `json:"seed,omitempty"`
	// NoCJitterMax adds 0..max extra cycles to each network delivery
	// (per-flow FIFO order is preserved).
	NoCJitterMax uint64 `json:"noc_jitter_max,omitempty"`
	// BankStalls stalls or kills LLC banks.
	BankStalls []BankStall `json:"bank_stalls,omitempty"`
	// DMAExtraDelay adds cycles to every DMA line transfer.
	DMAExtraDelay uint64 `json:"dma_extra_delay,omitempty"`
}

// BankStall describes one LLC bank perturbation window.
type BankStall struct {
	// Bank is the LLC bank index (one per mesh node, 0..15).
	Bank int `json:"bank"`
	// From is the first affected cycle.
	From uint64 `json:"from"`
	// For is the window length in cycles. Zero means forever: the bank
	// is dead from From on and silently drops its requests.
	For uint64 `json:"for,omitempty"`
}

// maxFaultDelay caps per-event fault delays; anything larger is a
// mis-specification (it would dominate every run's cycle count and
// mostly just trip the watchdog).
const maxFaultDelay = 1 << 20

// maxChunkWords is the paper's chunk granularity (64 B in 4-byte
// words), the coarsest — and default — lazy-writeback granularity.
const maxChunkWords = 16

// Validate reports whether c describes a simulable machine. Every
// error path that used to panic inside the package is reported here
// instead; RunWorkloadCfg, Sweep, and NewSystem all call it and return
// its error rather than crashing the process.
func (c Config) Validate() error {
	if !c.Org.Valid() {
		return fmt.Errorf("stash: invalid memory organization MemOrg(%d): want one of %v", int(c.Org), Orgs())
	}
	if c.GPUs < 1 {
		return fmt.Errorf("stash: invalid placement: %d GPU CUs (the machine needs at least 1)", c.GPUs)
	}
	if c.CPUs < 0 {
		return fmt.Errorf("stash: invalid placement: negative CPU count %d", c.CPUs)
	}
	if c.GPUs+c.CPUs > 16 {
		return fmt.Errorf("stash: invalid placement: %d GPUs + %d CPUs exceed the 16-node mesh", c.GPUs, c.CPUs)
	}
	if c.ChunkWords != 0 {
		cw := c.ChunkWords
		if cw < 1 || cw > maxChunkWords || cw&(cw-1) != 0 {
			return fmt.Errorf("stash: invalid ChunkWords %d: want 0 (default) or a power of two between 1 and %d", cw, maxChunkWords)
		}
	}
	if c.WatchdogBudget > 1<<40 {
		return fmt.Errorf("stash: invalid WatchdogBudget %d: want at most %d cycles", c.WatchdogBudget, uint64(1)<<40)
	}
	if f := c.Faults; f != nil {
		if f.NoCJitterMax > maxFaultDelay {
			return fmt.Errorf("stash: invalid NoCJitterMax %d: want at most %d cycles", f.NoCJitterMax, maxFaultDelay)
		}
		if f.DMAExtraDelay > maxFaultDelay {
			return fmt.Errorf("stash: invalid DMAExtraDelay %d: want at most %d cycles", f.DMAExtraDelay, maxFaultDelay)
		}
		for i, st := range f.BankStalls {
			if st.Bank < 0 || st.Bank >= 16 {
				return fmt.Errorf("stash: invalid BankStalls[%d].Bank %d: the LLC has banks 0..15", i, st.Bank)
			}
		}
	}
	if err := c.Trace.validate(); err != nil {
		return err
	}
	return c.validateTech()
}

// MicroConfig is the paper's microbenchmark machine: 1 GPU CU and 15
// CPU cores (Table 2).
func MicroConfig(org MemOrg) Config { return Config{Org: org, GPUs: 1, CPUs: 15} }

// AppConfig is the paper's application machine: 15 GPU CUs and 1 CPU
// core (Table 2).
func AppConfig(org MemOrg) Config { return Config{Org: org, GPUs: 15, CPUs: 1} }

// internal validates c and lowers it onto the simulator configuration.
func (c Config) internal() (system.Config, error) {
	if err := c.Validate(); err != nil {
		return system.Config{}, err
	}
	cfg := system.MicrobenchConfig(c.Org.internal())
	cfg.GPUNodes = nil
	cfg.CPUNodes = nil
	for n := 0; n < c.GPUs; n++ {
		cfg.GPUNodes = append(cfg.GPUNodes, n)
	}
	for n := c.GPUs; n < c.GPUs+c.CPUs; n++ {
		cfg.CPUNodes = append(cfg.CPUNodes, n)
	}
	cfg.Stash.EnableReplication = !c.DisableReplication
	cfg.Stash.EagerWriteback = c.EagerWriteback
	cfg.Stash.ChunkWords = c.ChunkWords
	cfg.Check = check.Params{
		Invariants:     c.CheckInvariants,
		WatchdogBudget: sim.Cycle(c.WatchdogBudget),
	}
	if f := c.Faults; f != nil {
		sched := &faults.Schedule{
			Seed:          f.Seed,
			NoCJitterMax:  sim.Cycle(f.NoCJitterMax),
			DMAExtraDelay: sim.Cycle(f.DMAExtraDelay),
		}
		for _, st := range f.BankStalls {
			sched.BankStalls = append(sched.BankStalls, faults.BankStall{
				Bank: st.Bank,
				From: sim.Cycle(st.From),
				For:  sim.Cycle(st.For),
			})
		}
		cfg.Faults = sched
	}
	cfg.Trace = c.Trace.internal()
	c.applyTech(&cfg)
	return cfg, nil
}

// Addr is a virtual address in the simulated unified address space.
type Addr uint64

// System is one simulated machine instance. Systems are single-use:
// allocate data, run kernels and CPU phases, then read results.
type System struct {
	sys *system.System
}

// NewSystem builds a machine, or reports why cfg is not simulable
// (see Config.Validate).
func NewSystem(cfg Config) (*System, error) {
	icfg, err := cfg.internal()
	if err != nil {
		return nil, err
	}
	return &System{sys: system.New(icfg)}, nil
}

// Alloc reserves words of global memory, optionally initialized by gen,
// and returns its base address.
func (s *System) Alloc(words int, gen func(i int) uint32) Addr {
	return Addr(s.sys.Alloc(words, gen))
}

// RunKernel launches the kernel across all CUs and runs the simulation
// until it completes, drains, and self-invalidates (a full kernel
// boundary).
func (s *System) RunKernel(k *Kernel) { s.sys.RunKernel(k.k) }

// RunCPU runs prog as n logical threads over the CPU cores (an
// acquire-release synchronized CPU phase).
func (s *System) RunCPU(prog *Program, n int) { s.sys.RunCPUPhase(prog.p, n) }

// Cycles returns the simulated time elapsed so far.
func (s *System) Cycles() uint64 { return uint64(s.sys.Cycles()) }

// Flush writes all owned data back to the LLC so ReadWord observes
// final values. Call after measurements: flushing adds traffic.
func (s *System) Flush() { s.sys.FlushForVerify() }

// ReadWord returns the coherent value of the word at a (Flush first).
func (s *System) ReadWord(a Addr) uint32 { return s.sys.ReadGlobal(memdata.VAddr(a)) }

// Result snapshots the system's measurements; see Measure.
func (s *System) Result() Result { return measure(s.sys) }

// MapParams is the AddMap intrinsic's argument list (paper Section 3.1):
// it maps a 1D or 2D, possibly strided, tile of a global array-of-
// structures field onto dense local words.
type MapParams struct {
	// StashBase is the first block-relative local word of the tile.
	StashBase int
	// GlobalBase is the tile's first mapped field address.
	GlobalBase Addr
	// FieldBytes is the mapped field's size; ObjectBytes the AoS
	// element size (equal for scalar arrays).
	FieldBytes, ObjectBytes int
	// RowElems elements per tile row; StrideBytes between rows;
	// NumRows rows ("rowSize", "strideSize", "numStrides").
	RowElems, StrideBytes, NumRows int
	// Coherent selects Mapped Coherent vs Mapped Non-coherent mode.
	Coherent bool
}

func (m MapParams) internal() core.MapParams {
	return core.MapParams{
		StashBase:   m.StashBase,
		GlobalBase:  memdata.VAddr(m.GlobalBase),
		FieldBytes:  m.FieldBytes,
		ObjectBytes: m.ObjectBytes,
		RowElems:    m.RowElems,
		StrideBytes: m.StrideBytes,
		NumRows:     m.NumRows,
		Coherent:    m.Coherent,
	}
}

// Kernel is a compiled GPU grid.
type Kernel struct {
	k *gpu.Kernel
}

// Program is a compiled instruction sequence (for CPU phases).
type Program struct {
	p *isa.Program
}
