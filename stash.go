// Package stash is a from-scratch reproduction of the memory system
// proposed in "Stash: Have Your Scratchpad and Cache It Too"
// (Komuravelli et al., ISCA 2015) as an executable Go library.
//
// The stash is an SRAM organization for heterogeneous CPU-GPU systems
// that is directly addressed and compactly stored like a scratchpad —
// no tag or TLB access on hits, no conflict misses, only useful words
// resident — while remaining globally addressable and visible like a
// cache: data moves implicitly and on demand, writebacks are lazy, and
// values are kept coherent across compute units, enabling reuse across
// kernels.
//
// The package front-ends a full simulated machine (see DESIGN.md): GPU
// compute units executing a mini SIMT ISA, scratchpads, stashes, a DMA
// engine, DeNovo word-granularity coherence, a banked shared LLC, a 4x4
// mesh NoC, virtual memory, and a GPUWattch-style energy model. Every
// table and figure of the paper's evaluation can be regenerated through
// the benchmarks in bench_test.go and cmd/paperfigs.
//
// Quick start:
//
//	res, err := stash.RunWorkload("implicit", stash.Stash)
//	// res.Cycles, res.EnergyPJ, res.FlitHops, ...
//
// Custom kernels are written against System, Asm and MapParams; see
// examples/ for complete programs.
package stash

import (
	"fmt"

	"stash/internal/core"
	"stash/internal/gpu"
	"stash/internal/isa"
	"stash/internal/memdata"
	"stash/internal/system"
)

// MemOrg selects one of the paper's six memory organizations
// (Section 5.3).
type MemOrg int

// Memory organizations, in the paper's order.
const (
	// Scratch: 16 KB scratchpad + 32 KB L1; explicit copies.
	Scratch MemOrg = iota
	// ScratchG: Scratch with global accesses converted to scratchpad.
	ScratchG
	// ScratchGD: ScratchG with a D2MA-style DMA engine.
	ScratchGD
	// Cache: 32 KB L1 only.
	Cache
	// Stash: 16 KB stash + 32 KB L1 (the paper's contribution).
	Stash
	// StashG: Stash with global accesses converted to stash accesses.
	StashG
)

// Orgs lists all six memory organizations in the paper's order.
func Orgs() []MemOrg { return []MemOrg{Scratch, ScratchG, ScratchGD, Cache, Stash, StashG} }

var memOrgNames = [...]string{"Scratch", "ScratchG", "ScratchGD", "Cache", "Stash", "StashG"}

// Valid reports whether o is one of the six paper organizations.
func (o MemOrg) Valid() bool { return o >= Scratch && o <= StashG }

// String returns the configuration name as used in the paper's figures,
// or "MemOrg(n)" for values outside the six organizations.
func (o MemOrg) String() string {
	if !o.Valid() {
		return fmt.Sprintf("MemOrg(%d)", int(o))
	}
	return memOrgNames[o]
}

// ParseMemOrg returns the memory organization with the given figure
// name (e.g. "ScratchGD", "Stash").
func ParseMemOrg(name string) (MemOrg, error) {
	for i, n := range memOrgNames {
		if n == name {
			return MemOrg(i), nil
		}
	}
	return 0, fmt.Errorf("stash: unknown memory organization %q (want one of %v)", name, Orgs())
}

// MarshalText encodes o as its figure name, making MemOrg usable as a
// JSON value or map key.
func (o MemOrg) MarshalText() ([]byte, error) {
	if !o.Valid() {
		return nil, fmt.Errorf("stash: cannot marshal invalid MemOrg %d", int(o))
	}
	return []byte(o.String()), nil
}

// UnmarshalText decodes a figure name produced by MarshalText.
func (o *MemOrg) UnmarshalText(b []byte) error {
	v, err := ParseMemOrg(string(b))
	if err != nil {
		return err
	}
	*o = v
	return nil
}

// internal maps o onto the simulator's organization constant. Every
// public entry point validates o (Config.Validate) before reaching this
// point, so the default branch is unreachable from outside the package.
func (o MemOrg) internal() system.MemOrg {
	switch o {
	case Scratch:
		return system.Scratch
	case ScratchG:
		return system.ScratchG
	case ScratchGD:
		return system.ScratchGD
	case Cache:
		return system.CacheOnly
	case Stash:
		return system.StashOrg
	case StashG:
		return system.StashG
	}
	panic(fmt.Sprintf("stash: invalid MemOrg %d", int(o)))
}

// Config describes a machine to simulate. The zero value is not valid
// (Validate rejects it); start from MicroConfig or AppConfig.
type Config struct {
	// Org selects the memory organization.
	Org MemOrg `json:"org"`
	// GPUs and CPUs place compute units and CPU cores on the 16-node
	// mesh (GPUs first). GPUs must be at least 1 and GPUs+CPUs must not
	// exceed 16.
	GPUs int `json:"gpus"`
	CPUs int `json:"cpus"`
	// DisableReplication turns off the data-replication optimization of
	// paper Section 4.5 (for ablation).
	DisableReplication bool `json:"disable_replication,omitempty"`
	// EagerWriteback makes the stash write dirty data back at every
	// kernel boundary, scratchpad-style (for ablation).
	EagerWriteback bool `json:"eager_writeback,omitempty"`
	// ChunkWords overrides the lazy-writeback chunk granularity in words
	// (for ablation). Zero selects the paper's default of 16 words
	// (64 B, Section 4.2); explicit values must be powers of two between
	// 1 and 16, so kernels' 64 B-aligned stash allocations stay
	// chunk-aligned at the finer granularity.
	ChunkWords int `json:"chunk_words,omitempty"`
}

// maxChunkWords is the paper's chunk granularity (64 B in 4-byte
// words), the coarsest — and default — lazy-writeback granularity.
const maxChunkWords = 16

// Validate reports whether c describes a simulable machine. Every
// error path that used to panic inside the package is reported here
// instead; RunWorkloadCfg, Sweep, and NewSystem all call it and return
// its error rather than crashing the process.
func (c Config) Validate() error {
	if !c.Org.Valid() {
		return fmt.Errorf("stash: invalid memory organization MemOrg(%d): want one of %v", int(c.Org), Orgs())
	}
	if c.GPUs < 1 {
		return fmt.Errorf("stash: invalid placement: %d GPU CUs (the machine needs at least 1)", c.GPUs)
	}
	if c.CPUs < 0 {
		return fmt.Errorf("stash: invalid placement: negative CPU count %d", c.CPUs)
	}
	if c.GPUs+c.CPUs > 16 {
		return fmt.Errorf("stash: invalid placement: %d GPUs + %d CPUs exceed the 16-node mesh", c.GPUs, c.CPUs)
	}
	if c.ChunkWords != 0 {
		cw := c.ChunkWords
		if cw < 1 || cw > maxChunkWords || cw&(cw-1) != 0 {
			return fmt.Errorf("stash: invalid ChunkWords %d: want 0 (default) or a power of two between 1 and %d", cw, maxChunkWords)
		}
	}
	return nil
}

// MicroConfig is the paper's microbenchmark machine: 1 GPU CU and 15
// CPU cores (Table 2).
func MicroConfig(org MemOrg) Config { return Config{Org: org, GPUs: 1, CPUs: 15} }

// AppConfig is the paper's application machine: 15 GPU CUs and 1 CPU
// core (Table 2).
func AppConfig(org MemOrg) Config { return Config{Org: org, GPUs: 15, CPUs: 1} }

// internal validates c and lowers it onto the simulator configuration.
func (c Config) internal() (system.Config, error) {
	if err := c.Validate(); err != nil {
		return system.Config{}, err
	}
	cfg := system.MicrobenchConfig(c.Org.internal())
	cfg.GPUNodes = nil
	cfg.CPUNodes = nil
	for n := 0; n < c.GPUs; n++ {
		cfg.GPUNodes = append(cfg.GPUNodes, n)
	}
	for n := c.GPUs; n < c.GPUs+c.CPUs; n++ {
		cfg.CPUNodes = append(cfg.CPUNodes, n)
	}
	cfg.Stash.EnableReplication = !c.DisableReplication
	cfg.Stash.EagerWriteback = c.EagerWriteback
	cfg.Stash.ChunkWords = c.ChunkWords
	return cfg, nil
}

// Addr is a virtual address in the simulated unified address space.
type Addr uint64

// System is one simulated machine instance. Systems are single-use:
// allocate data, run kernels and CPU phases, then read results.
type System struct {
	sys *system.System
}

// NewSystem builds a machine, or reports why cfg is not simulable
// (see Config.Validate).
func NewSystem(cfg Config) (*System, error) {
	icfg, err := cfg.internal()
	if err != nil {
		return nil, err
	}
	return &System{sys: system.New(icfg)}, nil
}

// Alloc reserves words of global memory, optionally initialized by gen,
// and returns its base address.
func (s *System) Alloc(words int, gen func(i int) uint32) Addr {
	return Addr(s.sys.Alloc(words, gen))
}

// RunKernel launches the kernel across all CUs and runs the simulation
// until it completes, drains, and self-invalidates (a full kernel
// boundary).
func (s *System) RunKernel(k *Kernel) { s.sys.RunKernel(k.k) }

// RunCPU runs prog as n logical threads over the CPU cores (an
// acquire-release synchronized CPU phase).
func (s *System) RunCPU(prog *Program, n int) { s.sys.RunCPUPhase(prog.p, n) }

// Cycles returns the simulated time elapsed so far.
func (s *System) Cycles() uint64 { return uint64(s.sys.Cycles()) }

// Flush writes all owned data back to the LLC so ReadWord observes
// final values. Call after measurements: flushing adds traffic.
func (s *System) Flush() { s.sys.FlushForVerify() }

// ReadWord returns the coherent value of the word at a (Flush first).
func (s *System) ReadWord(a Addr) uint32 { return s.sys.ReadGlobal(memdata.VAddr(a)) }

// Result snapshots the system's measurements; see Measure.
func (s *System) Result() Result { return measure(s.sys) }

// MapParams is the AddMap intrinsic's argument list (paper Section 3.1):
// it maps a 1D or 2D, possibly strided, tile of a global array-of-
// structures field onto dense local words.
type MapParams struct {
	// StashBase is the first block-relative local word of the tile.
	StashBase int
	// GlobalBase is the tile's first mapped field address.
	GlobalBase Addr
	// FieldBytes is the mapped field's size; ObjectBytes the AoS
	// element size (equal for scalar arrays).
	FieldBytes, ObjectBytes int
	// RowElems elements per tile row; StrideBytes between rows;
	// NumRows rows ("rowSize", "strideSize", "numStrides").
	RowElems, StrideBytes, NumRows int
	// Coherent selects Mapped Coherent vs Mapped Non-coherent mode.
	Coherent bool
}

func (m MapParams) internal() core.MapParams {
	return core.MapParams{
		StashBase:   m.StashBase,
		GlobalBase:  memdata.VAddr(m.GlobalBase),
		FieldBytes:  m.FieldBytes,
		ObjectBytes: m.ObjectBytes,
		RowElems:    m.RowElems,
		StrideBytes: m.StrideBytes,
		NumRows:     m.NumRows,
		Coherent:    m.Coherent,
	}
}

// Kernel is a compiled GPU grid.
type Kernel struct {
	k *gpu.Kernel
}

// Program is a compiled instruction sequence (for CPU phases).
type Program struct {
	p *isa.Program
}
