package stash

import (
	"fmt"
	"sort"
	"strings"

	"stash/internal/energy"
	"stash/internal/system"
)

// Result holds one simulation's measurements: the quantities plotted in
// the paper's Figures 5 and 6.
type Result struct {
	// Cycles is execution time in GPU cycles (Figures 5a, 6a).
	Cycles uint64
	// EnergyPJ is total dynamic energy in picojoules (Figures 5b, 6b).
	EnergyPJ float64
	// EnergyByComponent breaks EnergyPJ into the paper's stacked-bar
	// components: "GPU core+", "L1 D$", "Scratch/Stash", "L2 $", "N/W".
	EnergyByComponent map[string]float64
	// GPUInstructions counts dynamic GPU instructions (Figure 5c).
	GPUInstructions uint64
	// FlitHops counts network flit-crossings by class: "read", "write",
	// "writeback" (Figure 5d).
	FlitHops map[string]uint64
	// Counters is the full raw counter snapshot for deeper analysis.
	Counters map[string]uint64
	// EnergyEvents counts the energy-model events that occurred, keyed
	// by event name (e.g. "l1_hit", "stash_write"). Multiplying each by
	// its configured per-access cost reproduces EnergyPJ exactly, so a
	// consumer can re-price a run under different cost tables without
	// re-simulating. Zero-count events are omitted.
	EnergyEvents map[string]uint64
	// StaticEnergyPJ is leakage energy over the run (leakage power x
	// elapsed cycles), reported only when a technology profile with
	// nonzero leakage is configured. It is deliberately NOT included in
	// EnergyPJ: the paper's dynamic-energy stacks stay comparable, and
	// design-space tooling adds the two when ranking total energy.
	StaticEnergyPJ float64 `json:",omitempty"`
	// StaticByStructure breaks StaticEnergyPJ into the profiled
	// structure groups ("Scratch/Stash", "L1 D$", "L2 $").
	StaticByStructure map[string]float64 `json:",omitempty"`
	// Timeline is the run's event trace, non-nil exactly when the
	// Config's Trace was set. Failed runs carry the partial timeline up
	// to the failure. Its JSON form is a compact summary; write the
	// full trace with Timeline.WriteChrome or Timeline.WriteBinary.
	Timeline *Timeline `json:",omitempty"`
}

func measure(s *system.System) Result {
	r := Result{
		Cycles:            uint64(s.Cycles()),
		EnergyPJ:          s.Acct.TotalPJ(),
		EnergyByComponent: make(map[string]float64),
		FlitHops:          make(map[string]uint64),
		Counters:          s.Stats.Snapshot(),
		EnergyEvents:      s.Acct.NonzeroCounts(),
	}
	if st := s.Cfg.Static; st.Any() {
		cycles := float64(r.Cycles)
		r.StaticByStructure = make(map[string]float64)
		for _, part := range []struct {
			name string
			pj   float64
		}{
			{energy.ScratchStash.String(), st.StashPJPerCycle},
			{energy.L1.String(), st.L1PJPerCycle},
			{energy.L2.String(), st.LLCPJPerCycle},
		} {
			if part.pj == 0 {
				continue
			}
			e := part.pj * cycles
			r.StaticByStructure[part.name] = e
			r.StaticEnergyPJ += e
		}
	}
	for c := energy.Component(0); c < energy.NumComponents; c++ {
		if pj := s.Acct.ComponentPJ(c); pj != 0 || c < energy.DRAM {
			r.EnergyByComponent[c.String()] = pj
		}
	}
	for name, v := range r.Counters {
		if strings.HasPrefix(name, "cu.") && strings.HasSuffix(name, ".instructions") {
			r.GPUInstructions += v
		}
	}
	for _, class := range []string{"read", "write", "writeback"} {
		r.FlitHops[class] = s.Stats.Sum("noc.flit_hops." + class)
	}
	if tl := s.FinishTrace(); tl != nil {
		r.Timeline = &Timeline{tl: tl}
	}
	return r
}

// TotalFlitHops sums the network traffic across classes.
func (r Result) TotalFlitHops() uint64 {
	var t uint64
	for _, v := range r.FlitHops {
		t += v
	}
	return t
}

// String renders the headline metrics.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d energy=%.1fnJ instructions=%d flit-hops=%d\n",
		r.Cycles, r.EnergyPJ/1e3, r.GPUInstructions, r.TotalFlitHops())
	comps := make([]string, 0, len(r.EnergyByComponent))
	for c := range r.EnergyByComponent {
		comps = append(comps, c)
	}
	sort.Strings(comps)
	for _, c := range comps {
		fmt.Fprintf(&b, "  %-14s %12.1f pJ\n", c, r.EnergyByComponent[c])
	}
	return b.String()
}

// Normalized expresses this result relative to a baseline, as the
// paper's figures do (1.0 = baseline).
type Normalized struct {
	Cycles, Energy, Instructions, Traffic float64
}

// NormalizeTo divides r's metrics by the baseline's.
func (r Result) NormalizeTo(base Result) Normalized {
	frac := func(a, b uint64) float64 {
		if b == 0 {
			return 0
		}
		return float64(a) / float64(b)
	}
	n := Normalized{
		Cycles:       frac(r.Cycles, base.Cycles),
		Instructions: frac(r.GPUInstructions, base.GPUInstructions),
		Traffic:      frac(r.TotalFlitHops(), base.TotalFlitHops()),
	}
	if base.EnergyPJ != 0 {
		n.Energy = r.EnergyPJ / base.EnergyPJ
	}
	return n
}
