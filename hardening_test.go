package stash

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// deadBank returns a config whose LLC bank 0 silently drops every
// request from cycle 0 on — the canonical induced hang — with the
// hardening checks armed.
func deadBank(org MemOrg) Config {
	cfg := MicroConfig(org)
	cfg.CheckInvariants = true
	cfg.WatchdogBudget = 100_000
	cfg.Faults = &FaultConfig{BankStalls: []BankStall{{Bank: 0, From: 0}}}
	return cfg
}

// The acceptance test for the hardening work: a fault that would wedge
// the simulator forever (a dead LLC bank losing requests) instead
// produces a structured, diagnosable per-cell error within the
// watchdog's cycle budget. The test finishing at all is the proof that
// the infinite hang was converted.
func TestInducedHangBecomesCellError(t *testing.T) {
	_, err := RunWorkloadCfg("implicit", deadBank(Cache))
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v (%T), want *CellError", err, err)
	}
	// A lost request manifests as a livelock (replay storm) or a
	// quiescence deadlock (queue drained) depending on where it lands;
	// both are converted failures.
	if ce.Kind != FailHang && ce.Kind != FailDeadlock {
		t.Errorf("Kind = %s, want hang or deadlock", ce.Kind)
	}
	if ce.Workload != "implicit" || ce.Org != Cache {
		t.Errorf("cell identity = %s/%v", ce.Workload, ce.Org)
	}
	if ce.Diagnostic == "" || !strings.Contains(ce.Diagnostic, "engine:") {
		t.Errorf("diagnostic missing machine state:\n%s", ce.Diagnostic)
	}
}

// A sweep with a hang-inducing cell reports it with the right status
// and diagnostic while the healthy cells complete normally.
func TestSweepIsolatesWedgedCell(t *testing.T) {
	specs := []RunSpec{
		{Workload: "implicit", Config: MicroConfig(Stash)},
		{Workload: "implicit", Config: deadBank(Cache)},
	}
	results, err := Sweep(context.Background(), specs, SweepOptions{Workers: 1})
	if err == nil {
		t.Fatal("sweep with a wedged cell returned nil error")
	}
	if results[0].Err != nil || results[0].Status() != StatusOK {
		t.Errorf("healthy cell: Err=%v Status=%s", results[0].Err, results[0].Status())
	}
	if st := results[1].Status(); st != StatusHang && st != StatusDeadlock {
		t.Errorf("wedged cell status = %s, want hang or deadlock", st)
	}

	var buf bytes.Buffer
	if err := EncodeJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	var cells []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &cells); err != nil {
		t.Fatal(err)
	}
	if cells[0]["status"] != "ok" || cells[0]["result"] == nil {
		t.Errorf("healthy cell JSON: %v", cells[0])
	}
	if s := cells[1]["status"]; s != "hang" && s != "deadlock" {
		t.Errorf("wedged cell JSON status = %v", s)
	}
	if d, _ := cells[1]["diagnostic"].(string); !strings.Contains(d, "engine:") {
		t.Errorf("wedged cell JSON missing diagnostic: %v", cells[1]["diagnostic"])
	}
}

// Canceling a sweep mid-flight must not discard the cells that already
// completed: their results stay intact and encodable, and the cells
// that never ran are distinguishable by status.
func TestSweepEarlyCancelKeepsCompletedCells(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	specs := Grid([]string{"implicit"}, []MemOrg{Stash, Scratch, Cache, StashG})
	results, err := Sweep(ctx, specs, SweepOptions{
		Workers: 1,
		// Cancel as soon as the first cell lands: with one worker, the
		// remaining cells are never started.
		Progress: func(e SweepEvent) { cancel() },
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if results[0].Err != nil || results[0].Result.Cycles == 0 {
		t.Fatalf("completed cell was discarded: %+v", results[0])
	}
	if results[0].Status() != StatusOK {
		t.Errorf("completed cell status = %s, want ok", results[0].Status())
	}
	last := results[len(results)-1]
	if last.Status() != StatusNotStarted {
		t.Errorf("never-started cell status = %s, want not_started", last.Status())
	}

	var buf bytes.Buffer
	if err := EncodeJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"status": "ok"`) || !strings.Contains(out, `"status": "not_started"`) {
		t.Errorf("JSON missing per-cell statuses:\n%s", out)
	}
}

// A cell that exceeds its wall-clock budget fails with ErrCellTimeout
// (status "timeout"), distinct from a sweep-wide cancellation, and the
// sweep goes on.
func TestSweepCellTimeout(t *testing.T) {
	// reuse/Scratch is the longest-running cell by a wide margin, so a
	// tiny budget reliably fires mid-simulation.
	specs := []RunSpec{{Workload: "reuse", Config: MicroConfig(Scratch)}}
	results, err := Sweep(context.Background(), specs, SweepOptions{
		Workers:     1,
		CellTimeout: 20 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("timed-out sweep returned nil error")
	}
	r := results[0]
	if !errors.Is(r.Err, ErrCellTimeout) {
		t.Fatalf("cell Err = %v, want ErrCellTimeout", r.Err)
	}
	if r.Status() != StatusTimeout {
		t.Errorf("status = %s, want timeout", r.Status())
	}
	if r.Attempts != 1 {
		t.Errorf("Attempts = %d, want 1", r.Attempts)
	}
}

// Retries re-run a failing cell the configured number of extra times
// and record the attempt count.
func TestSweepRetries(t *testing.T) {
	specs := []RunSpec{{Workload: "no-such-workload", Config: MicroConfig(Stash)}}
	results, err := Sweep(context.Background(), specs, SweepOptions{Workers: 1, Retries: 2})
	if err == nil {
		t.Fatal("sweep of an unknown workload returned nil error")
	}
	if results[0].Attempts != 3 {
		t.Errorf("Attempts = %d, want 3 (1 run + 2 retries)", results[0].Attempts)
	}
}

// Timing faults the protocol must absorb: jitter, a finite bank stall,
// and DMA delay change cycle counts, but every workload still verifies
// against its Go reference.
func TestWorkloadsTolerateTimingFaults(t *testing.T) {
	cases := []struct {
		name     string
		workload string
		org      MemOrg
		faults   *FaultConfig
	}{
		{"noc jitter", "implicit", Stash, &FaultConfig{Seed: 11, NoCJitterMax: 5}},
		{"bank stall", "implicit", Cache, &FaultConfig{BankStalls: []BankStall{{Bank: 0, From: 100, For: 3000}}}},
		{"dma delay", "implicit", ScratchGD, &FaultConfig{DMAExtraDelay: 9}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clean := MicroConfig(tc.org)
			clean.CheckInvariants = true
			clean.WatchdogBudget = 1 << 24
			base, err := RunWorkloadCfg(tc.workload, clean)
			if err != nil {
				t.Fatal(err)
			}
			faulty := clean
			faulty.Faults = tc.faults
			res, err := RunWorkloadCfg(tc.workload, faulty)
			if err != nil {
				t.Fatalf("workload did not tolerate the fault: %v", err)
			}
			if res.Cycles <= base.Cycles {
				t.Errorf("fault did not perturb timing: %d vs %d cycles", res.Cycles, base.Cycles)
			}
		})
	}
}

// No config input may panic, and anything Validate rejects must also be
// rejected by the entry points before a simulation starts.
func FuzzConfigValidate(f *testing.F) {
	seeds := []string{
		`{"org":"Stash","gpus":1,"cpus":15}`,
		`{"org":"Cache","gpus":15,"cpus":1,"chunk_words":4}`,
		`{"org":"ScratchGD","gpus":1,"cpus":15,"watchdog_budget":100000,"check_invariants":true}`,
		`{"org":"Stash","gpus":1,"cpus":15,"faults":{"seed":7,"noc_jitter_max":4,"bank_stalls":[{"bank":3,"from":10,"for":100}]}}`,
		`{"org":"Stash","gpus":200,"cpus":-5,"chunk_words":7}`,
		`{"org":"Stash","gpus":1,"faults":{"bank_stalls":[{"bank":-1}]}}`,
		`{}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var cfg Config
		if err := json.Unmarshal(data, &cfg); err != nil {
			return
		}
		err := cfg.Validate() // must never panic
		if err == nil {
			return
		}
		// Rejected configs must be refused at the API boundary, not
		// crash (or run) inside the simulator.
		if _, nerr := NewSystem(cfg); nerr == nil {
			t.Fatalf("Validate rejected %+v (%v) but NewSystem accepted it", cfg, err)
		}
		if _, rerr := RunWorkloadCfg("implicit", cfg); rerr == nil {
			t.Fatalf("Validate rejected %+v (%v) but RunWorkloadCfg accepted it", cfg, err)
		}
	})
}
