module stash

go 1.24
