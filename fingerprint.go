package stash

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
)

// fingerprintVersion is folded into every fingerprint. Bump it when the
// canonical encoding — or the simulator's observable behaviour for an
// unchanged Config — changes, so stale cached results can never be
// served for semantically different cells.
//
// v2 accompanied the cellcache storage redesign (self-describing "sce2"
// entry frames, pluggable engines): bumping the key version retires
// every entry persisted by v1 daemons in one stroke, so a new binary
// pointed at an old cache directory can never replay bytes produced
// under the old on-disk discipline. Codec identity is deliberately NOT
// key material — it lives in each stored entry's frame header, so the
// same cell hits regardless of which compression the cache runs.
const fingerprintVersion = "stash-cell-v2"

// Fingerprint returns the cell's content address: a stable hex SHA-256
// over the workload name and a canonical encoding of the Config. Two
// specs have equal fingerprints exactly when they describe the same
// simulation, so — because every simulation is deterministic — a
// fingerprint fully determines the cell's Result. This is the cache key
// discipline behind cmd/stashd's cell-result cache (DESIGN.md §12).
//
// The canonical encoding is independent of struct field order and of Go
// map iteration: fields are keyed by their JSON names and sorted, zero
// optional fields are omitted (so a default expressed explicitly or
// left zero hashes identically), and integers keep full 64-bit
// precision. The encoding is versioned; fingerprints are comparable
// only within one version.
//
// Fingerprint does not validate the spec — an invalid Config still
// fingerprints (callers that simulate will surface Validate's error) —
// but it fails on a Config that cannot be encoded at all, such as a
// MemOrg outside the six organizations.
func (s RunSpec) Fingerprint() (string, error) {
	cfg, err := canonicalJSON(s.Config)
	if err != nil {
		return "", fmt.Errorf("stash: fingerprinting %s: %w", s.Workload, err)
	}
	h := sha256.New()
	io.WriteString(h, fingerprintVersion)
	h.Write([]byte{0})
	io.WriteString(h, s.Workload)
	h.Write([]byte{0})
	h.Write(cfg)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// canonicalJSON encodes v deterministically: marshal, reparse into
// generic form with exact number text preserved, and re-marshal. The
// round trip erases struct field declaration order (objects become maps,
// which encoding/json writes with sorted keys) while json.Number keeps
// 64-bit integers — fault seeds — exact.
func canonicalJSON(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var generic any
	if err := dec.Decode(&generic); err != nil {
		return nil, err
	}
	return json.Marshal(generic)
}
