package stash

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"
)

// The technology golden table pins the versioned timing-model extension:
// cells running under non-default memory-technology profiles. The
// default (nil tech axes) path is pinned by testdata/golden.json and must
// never move; these cells pin what the extension itself computes, so a
// change to the technology lowering is as loud as a change to the core
// timing model. Regenerate deliberately with
//
//	go test -run TestGoldenTech -update-golden-tech
//
// and justify the diff in review.

var updateGoldenTech = flag.Bool("update-golden-tech", false, "rewrite testdata/golden_tech.json from the current simulator")

const goldenTechPath = "testdata/golden_tech.json"

type goldenTechEntry struct {
	Name           string  `json:"name"`
	Workload       string  `json:"workload"`
	Config         Config  `json:"config"`
	Cycles         uint64  `json:"cycles"`
	EnergyPJ       float64 `json:"energy_pj"`
	StaticEnergyPJ float64 `json:"static_energy_pj"`
}

// goldenTechCells spans the extension's axes: both non-default profiles,
// stash and cache structures, both machine shapes, a capacity override,
// an LLC axis, and an inline-override custom spec.
func goldenTechCells() []struct {
	Name     string
	Workload string
	Config   Config
} {
	cell := func(name, w string, cfg Config) struct {
		Name     string
		Workload string
		Config   Config
	} {
		return struct {
			Name     string
			Workload string
			Config   Config
		}{name, w, cfg}
	}
	sttStash := MicroConfig(Stash)
	sttStash.StashTech = &TechSpec{Profile: "stt-mram"}
	edramStash := MicroConfig(Stash)
	edramStash.StashTech = &TechSpec{Profile: "edram"}
	sttCache := MicroConfig(Cache)
	sttCache.L1Tech = &TechSpec{Profile: "stt-mram"}
	edramLLC := MicroConfig(Cache)
	edramLLC.LLCTech = &TechSpec{Profile: "edram"}
	bigStt := MicroConfig(Stash)
	bigStt.StashTech = &TechSpec{Profile: "stt-mram", CapacityKB: 64}
	custom := MicroConfig(Stash)
	custom.StashTech = &TechSpec{WriteLatDelta: 4, WriteEnergyScale: 3, LeakageMWPerKB: 0.005}
	appStt := AppConfig(StashG)
	appStt.StashTech = &TechSpec{Profile: "stt-mram"}
	appStt.L1Tech = &TechSpec{Profile: "stt-mram"}
	return []struct {
		Name     string
		Workload string
		Config   Config
	}{
		cell("stt-mram stash", "implicit", sttStash),
		cell("edram stash", "implicit", edramStash),
		cell("stt-mram gpu L1", "reuse", sttCache),
		cell("edram llc", "reuse", edramLLC),
		cell("stt-mram stash 64KB", "reuse", bigStt),
		cell("custom write-penalty stash", "implicit", custom),
		cell("app stt-mram stash+l1", "lud", appStt),
	}
}

func writeGoldenTech(t *testing.T) {
	t.Helper()
	cells := goldenTechCells()
	specs := make([]RunSpec, len(cells))
	for i, c := range cells {
		specs[i] = RunSpec{Workload: c.Workload, Config: c.Config}
	}
	results, err := Sweep(context.Background(), specs, SweepOptions{Workers: runtime.GOMAXPROCS(0)})
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]goldenTechEntry, len(results))
	for i, r := range results {
		entries[i] = goldenTechEntry{
			Name:           cells[i].Name,
			Workload:       r.Spec.Workload,
			Config:         r.Spec.Config,
			Cycles:         r.Result.Cycles,
			EnergyPJ:       r.Result.EnergyPJ,
			StaticEnergyPJ: r.Result.StaticEnergyPJ,
		}
	}
	data, err := json.MarshalIndent(entries, "", "\t")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenTechPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d tech golden entries to %s", len(entries), goldenTechPath)
}

// TestGoldenTechMetrics replays every technology cell and requires exact
// equality with the committed table.
func TestGoldenTechMetrics(t *testing.T) {
	if *updateGoldenTech {
		writeGoldenTech(t)
		return
	}
	data, err := os.ReadFile(goldenTechPath)
	if err != nil {
		t.Fatalf("reading tech golden table (regenerate with -update-golden-tech): %v", err)
	}
	var entries []goldenTechEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatalf("parsing %s: %v", goldenTechPath, err)
	}
	if want := len(goldenTechCells()); len(entries) != want {
		t.Fatalf("tech golden table has %d entries, want %d; regenerate with -update-golden-tech", len(entries), want)
	}
	for _, e := range entries {
		e := e
		if testing.Short() && !IsMicrobenchmark(e.Workload) {
			continue
		}
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			res, err := RunWorkloadCfg(e.Workload, e.Config)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cycles != e.Cycles {
				t.Errorf("Cycles = %d, golden %d", res.Cycles, e.Cycles)
			}
			if res.EnergyPJ != e.EnergyPJ {
				t.Errorf("EnergyPJ = %v, golden %v", res.EnergyPJ, e.EnergyPJ)
			}
			if res.StaticEnergyPJ != e.StaticEnergyPJ {
				t.Errorf("StaticEnergyPJ = %v, golden %v", res.StaticEnergyPJ, e.StaticEnergyPJ)
			}
		})
	}
}

// TestGoldenTechDiverges cross-checks the two golden tables: a
// write-penalized technology must cost cycles and move energy relative
// to the default-profile golden entry of the same cell, proving the
// extension actually changes the model rather than being silently
// ignored.
func TestGoldenTechDiverges(t *testing.T) {
	base := map[string]goldenEntry{}
	for _, e := range readGolden(t) {
		base[e.Workload+"/"+e.Org] = e
	}
	data, err := os.ReadFile(goldenTechPath)
	if err != nil {
		t.Fatal(err)
	}
	var entries []goldenTechEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name != "stt-mram stash" {
			continue
		}
		b, ok := base[e.Workload+"/"+e.Config.Org.String()]
		if !ok {
			t.Fatalf("no default golden entry for %s/%s", e.Workload, e.Config.Org)
		}
		if e.Cycles <= b.Cycles {
			t.Errorf("stt-mram stash cycles %d not above default %d", e.Cycles, b.Cycles)
		}
		if e.EnergyPJ == b.EnergyPJ {
			t.Error("stt-mram stash energy identical to default golden entry")
		}
		if e.StaticEnergyPJ <= 0 {
			t.Error("stt-mram stash reported no static energy")
		}
		return
	}
	t.Fatal("tech golden table has no 'stt-mram stash' entry")
}
