package stash

import (
	"fmt"

	"stash/internal/energy"
	"stash/internal/sim"
	"stash/internal/system"
	"stash/internal/tech"
)

// TechSpec selects a memory technology for one storage structure (the
// stash, the GPU L1s, or the LLC), as a named profile, inline parameter
// overrides, or both. The zero-valued spec — and, importantly, a nil
// *TechSpec field on Config — is the SRAM baseline; nil keeps runs
// bit-identical to the pre-technology timing model and preserves the
// configuration's cell-cache fingerprint.
//
// Non-nil specs are a versioned timing-model extension: they change
// cycle counts and energy through asymmetric read/write latency deltas
// and energy scales, and their expected metrics are pinned by
// testdata/golden_tech.json rather than the default golden vectors.
type TechSpec struct {
	// Profile names a registered technology profile ("sram", "stt-mram",
	// "edram") supplying the baseline parameters. Empty starts from a
	// neutral custom profile (zero deltas, 1.0 scales, zero leakage).
	Profile string `json:"profile,omitempty"`
	// ReadLatDelta and WriteLatDelta override the profile's extra cycles
	// per read/write access when nonzero.
	ReadLatDelta  int `json:"read_lat_delta,omitempty"`
	WriteLatDelta int `json:"write_lat_delta,omitempty"`
	// ReadEnergyScale and WriteEnergyScale override the profile's
	// per-access energy multipliers when nonzero (1.0 = SRAM-equivalent).
	ReadEnergyScale  float64 `json:"read_energy_scale,omitempty"`
	WriteEnergyScale float64 `json:"write_energy_scale,omitempty"`
	// LeakageMWPerKB overrides the profile's static power per kilobyte
	// of capacity when nonzero. Leakage is reported separately
	// (Result.StaticEnergyPJ), never mixed into the dynamic EnergyPJ.
	LeakageMWPerKB float64 `json:"leakage_mw_per_kb,omitempty"`
	// CapacityKB resizes the structure when nonzero: the stash size, the
	// L1 size (every L1 instance), or the per-bank LLC size. Technology
	// latency/energy deltas apply to the GPU-side instances the energy
	// model measures; a capacity override is a structural change and
	// applies to every instance.
	CapacityKB int `json:"capacity_kb,omitempty"`
}

// Bounds on inline overrides: far beyond any published technology, so
// they only reject mis-specifications (e.g. a latency that would
// dominate every run and trip the watchdog).
const (
	maxTechLatDelta    = 1024
	maxTechEnergyScale = 1024.0
	maxTechLeakage     = 1024.0 // mW/KB
	maxTechCapacityKB  = 1 << 16
)

// resolve merges the named profile with the inline overrides and
// validates the effective parameters.
func (t *TechSpec) resolve() (tech.Profile, error) {
	p := tech.Profile{Name: "custom", ReadEnergyScale: 1, WriteEnergyScale: 1}
	if t.Profile != "" {
		var err error
		if p, err = tech.Lookup(t.Profile); err != nil {
			return tech.Profile{}, err
		}
	}
	if t.ReadLatDelta != 0 {
		p.ReadLatDelta = t.ReadLatDelta
	}
	if t.WriteLatDelta != 0 {
		p.WriteLatDelta = t.WriteLatDelta
	}
	if t.ReadEnergyScale != 0 {
		p.ReadEnergyScale = t.ReadEnergyScale
	}
	if t.WriteEnergyScale != 0 {
		p.WriteEnergyScale = t.WriteEnergyScale
	}
	if t.LeakageMWPerKB != 0 {
		p.LeakageMWPerKB = t.LeakageMWPerKB
	}
	if err := p.Validate(); err != nil {
		return tech.Profile{}, err
	}
	if p.ReadLatDelta > maxTechLatDelta || p.WriteLatDelta > maxTechLatDelta {
		return tech.Profile{}, fmt.Errorf("latency deltas must be at most %d cycles", maxTechLatDelta)
	}
	if p.ReadEnergyScale <= 0 || p.WriteEnergyScale <= 0 {
		return tech.Profile{}, fmt.Errorf("energy scales must be positive")
	}
	if p.ReadEnergyScale > maxTechEnergyScale || p.WriteEnergyScale > maxTechEnergyScale {
		return tech.Profile{}, fmt.Errorf("energy scales must be at most %g", maxTechEnergyScale)
	}
	if p.LeakageMWPerKB > maxTechLeakage {
		return tech.Profile{}, fmt.Errorf("leakage must be at most %g mW/KB", maxTechLeakage)
	}
	return p, nil
}

// validate reports whether the spec is usable on the named axis.
// minCapacityKB is the smallest structurally valid size (the structure
// must still hold at least one set/chunk at its associativity).
func (t *TechSpec) validate(axis string, minCapacityKB int) error {
	if t == nil {
		return nil
	}
	if _, err := t.resolve(); err != nil {
		return fmt.Errorf("stash: invalid %s: %w", axis, err)
	}
	if t.CapacityKB != 0 && (t.CapacityKB < minCapacityKB || t.CapacityKB > maxTechCapacityKB) {
		return fmt.Errorf("stash: invalid %s: CapacityKB %d out of range [%d, %d]",
			axis, t.CapacityKB, minCapacityKB, maxTechCapacityKB)
	}
	return nil
}

// Minimum structurally valid capacities: the L1 (8-way) and the
// per-bank LLC (16-way) need at least one full set of 64 B lines; the
// stash needs at least one 64 B writeback chunk per bank.
const (
	minL1CapacityKB    = 1
	minLLCCapacityKB   = 1
	minStashCapacityKB = 2
)

// validateTech checks all three technology axes.
func (c Config) validateTech() error {
	if err := c.StashTech.validate("StashTech", minStashCapacityKB); err != nil {
		return err
	}
	if err := c.L1Tech.validate("L1Tech", minL1CapacityKB); err != nil {
		return err
	}
	return c.LLCTech.validate("LLCTech", minLLCCapacityKB)
}

// applyTech lowers the technology axes onto the simulator config:
// latency extras and split-energy charging on the structure parameters,
// per-access cost scaling on the cost table, capacity overrides, and
// per-cycle leakage for the static-energy report. Validate has already
// accepted the specs.
func (c Config) applyTech(cfg *system.Config) {
	if t := c.StashTech; t != nil {
		p, _ := t.resolve()
		if t.CapacityKB != 0 {
			cfg.Stash.SizeBytes = t.CapacityKB << 10
		}
		cfg.Stash.ReadExtra = sim.Cycle(p.ReadLatDelta)
		cfg.Stash.WriteExtra = sim.Cycle(p.WriteLatDelta)
		cfg.Stash.TechEnergy = true
		cfg.Costs[energy.StashRead] *= p.ReadEnergyScale
		cfg.Costs[energy.StashWrite] *= p.WriteEnergyScale
		if c.Org.internal().HasStash() {
			kb := float64(cfg.Stash.SizeBytes) / 1024
			cfg.Static.StashPJPerCycle = tech.StaticPJPerCycle(p.LeakageMWPerKB*kb) * float64(c.GPUs)
		}
	}
	if t := c.L1Tech; t != nil {
		p, _ := t.resolve()
		if t.CapacityKB != 0 {
			cfg.L1.SizeBytes = t.CapacityKB << 10
		}
		cfg.L1.ReadExtra = sim.Cycle(p.ReadLatDelta)
		cfg.L1.WriteExtra = sim.Cycle(p.WriteLatDelta)
		cfg.L1.TechEnergy = true
		cfg.Costs[energy.L1ReadHit] *= p.ReadEnergyScale
		cfg.Costs[energy.L1ReadMiss] *= p.ReadEnergyScale
		cfg.Costs[energy.L1WriteHit] *= p.WriteEnergyScale
		cfg.Costs[energy.L1WriteMiss] *= p.WriteEnergyScale
		// Leakage covers the GPU-side L1s the energy model measures
		// (system.New strips the tech parameters off CPU L1s).
		kb := float64(cfg.L1.SizeBytes) / 1024
		cfg.Static.L1PJPerCycle = tech.StaticPJPerCycle(p.LeakageMWPerKB*kb) * float64(c.GPUs)
	}
	if t := c.LLCTech; t != nil {
		p, _ := t.resolve()
		if t.CapacityKB != 0 {
			cfg.L2.BankBytes = t.CapacityKB << 10
		}
		cfg.L2.ReadExtra = sim.Cycle(p.ReadLatDelta)
		cfg.L2.WriteExtra = sim.Cycle(p.WriteLatDelta)
		cfg.L2.TechEnergy = true
		cfg.Costs[energy.L2Read] *= p.ReadEnergyScale
		cfg.Costs[energy.L2Write] *= p.WriteEnergyScale
		kb := float64(cfg.L2.BankBytes) / 1024
		cfg.Static.LLCPJPerCycle = tech.StaticPJPerCycle(p.LeakageMWPerKB*kb) * float64(cfg.L2.NumBanks)
	}
}

// TechProfiles lists the registered technology profile names usable in
// TechSpec.Profile, in sorted order.
func TechProfiles() []string { return tech.Names() }

// LocalMemKB returns the per-CU local storage capacity the
// configuration provides (stash or scratchpad plus L1), in kilobytes —
// the capacity axis of a Pareto-frontier exploration. It reflects
// technology capacity overrides; invalid configurations report the
// defaults.
func (c Config) LocalMemKB() int {
	l1 := 32
	if c.L1Tech != nil && c.L1Tech.CapacityKB != 0 {
		l1 = c.L1Tech.CapacityKB
	}
	local := 0
	switch c.Org {
	case Scratch, ScratchG, ScratchGD:
		local = 16 // scratchpad (no technology axis yet)
	case Stash, StashG:
		local = 16
		if c.StashTech != nil && c.StashTech.CapacityKB != 0 {
			local = c.StashTech.CapacityKB
		}
	}
	return local + l1
}

// TechGrid crosses workloads x organizations x technology profiles x
// stash capacity points into sweep RunSpecs — the design-space grids of
// a HOPE-style exploration. Every cell carries an explicit profile on
// the stash (where the organization has one) and the GPU L1 axes, so
// energy is priced through the read/write-split classes uniformly
// across the grid; the LLC stays at the shared SRAM baseline.
// Organizations without a stash ignore the capacity axis (one cell per
// technology instead of one per capacity point), so the grid never
// contains duplicate cells. The spec order is deterministic: row-major
// in (workload, org, tech, capacity).
func TechGrid(workloads []string, orgs []MemOrg, techs []string, capsKB []int) ([]RunSpec, error) {
	if len(techs) == 0 {
		return nil, fmt.Errorf("stash: TechGrid needs at least one technology profile")
	}
	if len(capsKB) == 0 {
		capsKB = []int{16}
	}
	var specs []RunSpec
	for _, w := range workloads {
		for _, o := range orgs {
			for _, tn := range techs {
				if _, err := tech.Lookup(tn); err != nil {
					return nil, fmt.Errorf("stash: TechGrid: %w", err)
				}
				base := configFor(w, o)
				base.L1Tech = &TechSpec{Profile: tn}
				if !o.internal().HasStash() {
					if err := base.Validate(); err != nil {
						return nil, err
					}
					specs = append(specs, RunSpec{Workload: w, Config: base})
					continue
				}
				for _, kb := range capsKB {
					cfg := base
					cfg.StashTech = &TechSpec{Profile: tn, CapacityKB: kb}
					if err := cfg.Validate(); err != nil {
						return nil, err
					}
					specs = append(specs, RunSpec{Workload: w, Config: cfg})
				}
			}
		}
	}
	return specs, nil
}
